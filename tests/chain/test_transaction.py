"""Transaction signing, ids, endorsements."""

import dataclasses
import random

import pytest

from repro.chain.transaction import Endorsement, Transaction, rwset_digest
from repro.crypto import KeyPair
from repro.errors import InvalidTransactionError


@pytest.fixture
def keypair():
    return KeyPair.generate(random.Random(0))


@pytest.fixture
def tx(keypair):
    return Transaction.create(keypair, "counter", "increment", {"amount": 2}, nonce=1, timestamp=5.0)


def test_create_signs_and_ids(tx):
    assert tx.verify_signature()
    assert len(tx.tx_id) == 64


def test_same_proposal_same_id(keypair):
    a = Transaction.create(keypair, "c", "m", {"x": 1}, nonce=1, timestamp=1.0)
    b = Transaction.create(keypair, "c", "m", {"x": 1}, nonce=1, timestamp=1.0)
    assert a.tx_id == b.tx_id


def test_nonce_changes_id(keypair):
    a = Transaction.create(keypair, "c", "m", {}, nonce=1)
    b = Transaction.create(keypair, "c", "m", {}, nonce=2)
    assert a.tx_id != b.tx_id


def test_tampered_args_fail_verification(tx):
    tampered = dataclasses.replace(tx, args={"amount": 9999})
    assert not tampered.verify_signature()


def test_wrong_sender_fails_verification(tx):
    other = KeyPair.generate(random.Random(1))
    tampered = dataclasses.replace(tx, sender=other.address)
    assert not tampered.verify_signature()


def test_swapped_public_key_fails(tx):
    other = KeyPair.generate(random.Random(2))
    tampered = dataclasses.replace(tx, public_key_hex=other.public_key.hex())
    assert not tampered.verify_signature()


def test_validate_structure_raises_on_missing_contract(keypair):
    tx = Transaction.create(keypair, "", "m", {})
    with pytest.raises(InvalidTransactionError):
        tx.validate_structure()


def test_validate_structure_raises_on_bad_signature(tx):
    tampered = dataclasses.replace(tx, signature_hex="00" * 64)
    with pytest.raises(InvalidTransactionError):
        tampered.validate_structure()


def test_with_execution_attaches_rwsets(tx, keypair):
    endorsement = Endorsement.create(keypair, "peer-0", tx.tx_id, rwset_digest({"k": 1}, {"k": "v"}))
    endorsed = tx.with_execution(
        read_set={"k": 1},
        write_set={"k": "v"},
        events=({"kind": "e"},),
        return_value=42,
        endorsements=(endorsement,),
    )
    assert endorsed.read_set == {"k": 1}
    assert endorsed.write_set == {"k": "v"}
    assert endorsed.return_value == 42
    assert endorsed.tx_id == tx.tx_id  # id covers the proposal only
    assert endorsed.rwset_digest == rwset_digest({"k": 1}, {"k": "v"})


def test_endorsement_verify(tx, keypair):
    digest = rwset_digest({}, {"a": 1})
    endorsement = Endorsement.create(keypair, "peer-0", tx.tx_id, digest)
    assert endorsement.verify(tx.tx_id)
    assert not endorsement.verify("deadbeef" * 8)


def test_endorsement_bad_signature_rejected(tx, keypair):
    digest = rwset_digest({}, {})
    endorsement = Endorsement.create(keypair, "peer-0", tx.tx_id, digest)
    forged = dataclasses.replace(endorsement, signature_hex="11" * 64)
    assert not forged.verify(tx.tx_id)


def test_rwset_digest_sensitive_to_content():
    assert rwset_digest({"a": 1}, {}) != rwset_digest({"a": 2}, {})
    assert rwset_digest({}, {"k": "x"}) != rwset_digest({}, {"k": "y"})
