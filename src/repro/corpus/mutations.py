"""The paper's news-modification taxonomy as executable operators.

§VI of the paper models propagation as "relaying the news or the news
can go through various types of modifications with different intents
including, for example, mixing, splitting, merging, and inserting".
Each operator here produces a derived :class:`Article` that records:

- ``modification_degree`` — *measured* token-level change versus the
  parent(s) (1 − multiset Jaccard overlap), giving rankers a
  real-valued ground truth;
- ``distortion`` — the semantic damage characteristic of the operation
  (a faithful relay is 0; swapping who-did-what is high);
- ``cumulative_distortion`` — distortion accumulated along the whole
  derivation chain, which defines the fake/factual ground truth.
"""

from __future__ import annotations

import random
import re
from collections import Counter

from repro.corpus.articles import Article
from repro.corpus.lexicon import tokenize
from repro.corpus.articles import _sensational_sentence  # shared templates
from repro.corpus.topics import topic_by_name
from repro.errors import CorpusError

__all__ = [
    "relay",
    "split",
    "insert",
    "mix",
    "merge",
    "distort",
    "MUTATION_OPS",
    "measured_change",
]

# Verb inversions used by the distort operator: the hallmark of
# "modify the news originated from the standard factual news" (§I).
_VERB_INVERSIONS = {
    "announced": "retracted",
    "approved": "rejected",
    "confirmed": "denied",
    "completed": "abandoned",
    "expanded": "slashed",
    "funded": "defunded",
    "signed": "vetoed",
    "adopted": "scrapped",
    "opened": "shut down",
    "launched": "cancelled",
}

_NUMBER_RE = re.compile(r"\b\d+\b")


def measured_change(parent_texts: list[str], child_text: str) -> float:
    """Token-level modification degree: 1 − multiset Jaccard overlap."""
    parent_counts: Counter[str] = Counter()
    for text in parent_texts:
        parent_counts.update(tokenize(text))
    child_counts = Counter(tokenize(child_text))
    if not parent_counts and not child_counts:
        return 0.0
    intersection = sum((parent_counts & child_counts).values())
    union = sum((parent_counts | child_counts).values())
    return 1.0 - intersection / union if union else 1.0


def _derive(
    parents: list[Article],
    text: str,
    author: str,
    timestamp: float,
    op: str,
    distortion: float,
) -> Article:
    """Assemble a derived article with measured + accumulated scores."""
    degree = measured_change([p.text for p in parents], text)
    parent_cum = max(p.cumulative_distortion for p in parents)
    cumulative = min(1.0, parent_cum + distortion)
    return Article(
        article_id="",
        topic=parents[0].topic,
        text=text,
        author=author,
        timestamp=timestamp,
        parents=tuple(p.article_id for p in parents),
        op=op,
        modification_degree=degree,
        distortion=distortion,
        cumulative_distortion=cumulative,
        fabricated=any(p.fabricated for p in parents),
    )


def relay(article: Article, author: str, timestamp: float) -> Article:
    """Faithful re-share: text unchanged, zero distortion.

    Built directly rather than through :func:`_derive`: the text is the
    parent's by construction, so the measured change is exactly 0.0 and
    the two tokenization passes :func:`measured_change` would spend
    proving that are skipped — relays are the bulk of every cascade.
    """
    return Article(
        article_id="",
        topic=article.topic,
        text=article.text,
        author=author,
        timestamp=timestamp,
        parents=(article.article_id,),
        op="relay",
        modification_degree=0.0,
        distortion=0.0,
        cumulative_distortion=article.cumulative_distortion,
        fabricated=article.fabricated,
    )


def split(
    article: Article,
    author: str,
    timestamp: float,
    rng: random.Random,
    keep_fraction: float = 0.5,
) -> Article:
    """Selective quoting: keep a contiguous run of sentences.

    Mild context loss — the paper's "taking the pieces of information
    out of context" when done aggressively, so distortion scales with
    how much was cut.
    """
    if not 0 < keep_fraction <= 1:
        raise CorpusError("keep_fraction must be in (0, 1]")
    sentences = article.sentences
    keep = max(1, round(len(sentences) * keep_fraction))
    start = rng.randint(0, max(0, len(sentences) - keep))
    text = ". ".join(sentences[start : start + keep]) + "."
    cut_fraction = 1 - keep / max(1, len(sentences))
    return _derive([article], text, author, timestamp, "split", distortion=0.15 * cut_fraction)


def insert(
    article: Article,
    author: str,
    timestamp: float,
    rng: random.Random,
    n_insertions: int = 2,
) -> Article:
    """Envelop the factual core with emotional/clickbait content.

    This is the dominant fake-news pattern the paper cites (72.3% of
    fake news modifies standard factual news).  Distortion grows with
    the injected share of the final article.
    """
    if n_insertions < 1:
        raise CorpusError("need at least one insertion")
    topic = topic_by_name(article.topic)
    sentences = article.sentences
    for _ in range(n_insertions):
        position = rng.randint(0, len(sentences))
        sentences.insert(position, _sensational_sentence(topic, rng))
    text = ". ".join(sentences) + "."
    injected_share = n_insertions / max(1, len(sentences))
    return _derive(
        [article], text, author, timestamp, "insert", distortion=min(0.8, 1.2 * injected_share)
    )


def mix(
    first: Article,
    second: Article,
    author: str,
    timestamp: float,
    rng: random.Random,
) -> Article:
    """Interleave sentences of two articles into one narrative.

    Mixing two *factual* stories manufactures implied connections that
    were never reported, so it carries moderate inherent distortion.
    """
    a, b = first.sentences, second.sentences
    merged: list[str] = []
    i = j = 0
    while i < len(a) or j < len(b):
        take_first = j >= len(b) or (i < len(a) and rng.random() < 0.5)
        if take_first:
            merged.append(a[i])
            i += 1
        else:
            merged.append(b[j])
            j += 1
    text = ". ".join(merged) + "."
    return _derive([first, second], text, author, timestamp, "mix", distortion=0.2)


def merge(
    articles: list[Article],
    author: str,
    timestamp: float,
) -> Article:
    """Aggregation digest: concatenate articles with attribution intact.

    The benign multi-source roundup — negligible distortion, large
    measured change versus any single parent.
    """
    if len(articles) < 2:
        raise CorpusError("merge needs at least two articles")
    text = " ".join(a.text for a in articles)
    return _derive(articles, text, author, timestamp, "merge", distortion=0.02)


def distort(
    article: Article,
    author: str,
    timestamp: float,
    rng: random.Random,
) -> Article:
    """Minimal-edit semantic inversion: swap actors, invert verbs, alter
    numbers.  Few tokens change (low measured modification degree) but
    the story now reports things that did not happen — the hard case
    that pure edit-distance ranking misses and E6's ablation probes."""
    topic = topic_by_name(article.topic)
    text = article.text
    # Invert up to two neutral verbs.
    inverted = 0
    for verb, inversion in _VERB_INVERSIONS.items():
        if inverted >= 2:
            break
        if verb in text:
            text = text.replace(verb, inversion, 1)
            inverted += 1
    # Swap one entity for another from the same topic.
    for entity in topic.entities:
        if entity in text:
            others = [e for e in topic.entities if e != entity]
            text = text.replace(entity, rng.choice(others), 1)
            break
    # Perturb every number by a large factor.
    text = _NUMBER_RE.sub(lambda m: str(int(m.group()) * rng.randint(3, 9)), text, count=2)
    return _derive([article], text, author, timestamp, "distort", distortion=0.6)


MUTATION_OPS = {
    "relay": relay,
    "split": split,
    "insert": insert,
    "mix": mix,
    "merge": merge,
    "distort": distort,
}
