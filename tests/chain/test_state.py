"""World state versioning and MVCC snapshot semantics."""

import pytest

from repro.chain.state import WorldState


@pytest.fixture
def state():
    s = WorldState()
    s.apply_write_set({"a": 1, "b": {"nested": True}})
    return s


def test_get_and_contains(state):
    assert state.get("a") == 1
    assert "a" in state and "missing" not in state
    assert state.get("missing") is None


def test_versions_increase_per_commit(state):
    v1 = state.version("a")
    state.apply_write_set({"a": 2})
    assert state.version("a") == v1 + 1


def test_absent_key_has_sentinel_version(state):
    assert state.version("missing") == -1


def test_get_returns_copy(state):
    value = state.get("b")
    value["nested"] = False
    assert state.get("b") == {"nested": True}


def test_apply_deletes_with_none(state):
    state.apply_write_set({"a": None})
    assert "a" not in state


def test_snapshot_records_reads(state):
    snap = state.snapshot()
    snap.get("a")
    snap.get("missing")
    assert snap.read_set == {"a": state.version("a"), "missing": -1}


def test_snapshot_read_your_writes(state):
    snap = state.snapshot()
    snap.put("a", 99)
    assert snap.get("a") == 99
    # Buffered read does not add to the read set.
    assert "a" not in snap.read_set


def test_snapshot_delete_visible(state):
    snap = state.snapshot()
    snap.delete("a")
    assert snap.get("a") is None


def test_snapshot_put_none_rejected(state):
    with pytest.raises(ValueError):
        state.snapshot().put("a", None)


def test_validate_read_set_fresh(state):
    snap = state.snapshot()
    snap.get("a")
    assert state.validate_read_set(snap.read_set)


def test_validate_read_set_stale_after_write(state):
    snap = state.snapshot()
    snap.get("a")
    state.apply_write_set({"a": 2})
    assert not state.validate_read_set(snap.read_set)


def test_validate_read_of_absent_key_stale_after_create(state):
    snap = state.snapshot()
    snap.get("new-key")
    state.apply_write_set({"new-key": 1})
    assert not state.validate_read_set(snap.read_set)


def test_prefix_scan_committed(state):
    state.apply_write_set({"p:1": 1, "p:2": 2, "q:1": 3})
    snap = state.snapshot()
    assert snap.keys_with_prefix("p:") == ["p:1", "p:2"]


def test_prefix_scan_merges_buffered_writes(state):
    state.apply_write_set({"p:1": 1})
    snap = state.snapshot()
    snap.put("p:2", 2)
    snap.delete("p:1")
    assert snap.keys_with_prefix("p:") == ["p:2"]


def test_prefix_scan_records_reads_for_mvcc(state):
    state.apply_write_set({"p:1": 1})
    snap = state.snapshot()
    snap.keys_with_prefix("p:")
    state.apply_write_set({"p:1": 2})
    assert not state.validate_read_set(snap.read_set)


def test_len_counts_keys(state):
    assert len(state) == 2
