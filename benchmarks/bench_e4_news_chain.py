"""E4 — Fig. 4: the news blockchain supply chain.

Workload: a 400-agent social cascade over two seeded stories, with
every share committed on-chain, then graph reconstruction from the
ledger.  Reports the structural statistics of the resulting provenance
graph and contrasts them against E3's process chain: dynamic depth,
heavy-tailed fan-out, branching (mix/merge) nodes, and the fraction of
nodes traceable to the factual root.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.core import TrustingNewsPlatform, trace_to_factual_root
from repro.core.process_chain import graph_shape
from repro.corpus import CorpusGenerator
from repro.social import CascadeRunner, bind_agents, make_population, scale_free_follow_graph

N_AGENTS = 400
N_ROUNDS = 10


def _run():
    platform = TrustingNewsPlatform(seed=400)
    rng = random.Random(400)
    graph = scale_free_follow_graph(N_AGENTS, seed=400)
    agents = make_population(N_AGENTS, rng, bot_fraction=0.1)
    bind_agents(graph, agents)
    corpus = CorpusGenerator(seed=401)

    fact = corpus.factual(topic="elections")
    platform.seed_fact("root-fact", fact.text, "election-board", "elections")
    platform.register_participant("wire", role="publisher")
    platform.create_distribution_platform("wire", "wire-svc")
    platform.create_news_room("wire", "wire-svc", "desk", "elections")
    from repro.corpus.mutations import relay

    seed_factual = relay(fact, "wire", 0.0)
    platform.publish_article("wire", "wire-svc", "desk", "seed-factual",
                             seed_factual.text, "elections")

    runner = CascadeRunner(
        graph, corpus,
        on_share=lambda event, article: platform.ingest_share(event, article, topic="elections"),
    )
    # Two seeds: the factual report and an emotional mutation of it.
    factual_share = corpus.relay_derivation(seed_factual, "agent-00000", 0.0)

    class _Seed:
        def __init__(self, agent_id, parent, op, article_id):
            self.agent_id = agent_id
            self.parent_article_id = parent
            self.op = op
            self.article_id = article_id

    platform.ingest_share(_Seed("agent-00000", "seed-factual", "relay",
                                factual_share.article_id), factual_share, "elections")
    fake = corpus.insertion_fake(seed_factual, "agent-00001", 0.0, n_insertions=4)
    platform.ingest_share(_Seed("agent-00001", "seed-factual", "insert",
                                fake.article_id), fake, "elections")
    hubs = sorted(graph.nodes(), key=lambda n: graph.out_degree(n), reverse=True)
    result = runner.run([(hubs[0], factual_share), (hubs[1], fake)], n_rounds=N_ROUNDS)
    return platform, result


def test_e4_news_supply_chain(benchmark):
    platform, result = benchmark.pedantic(_run, rounds=1, iterations=1)
    graph = platform.graph
    shape = graph_shape(graph)
    article_nodes = [n for n, a in graph.nodes(data=True) if not a.get("is_fact_root")]
    traces = [trace_to_factual_root(graph, node) for node in article_nodes]
    traceable = sum(1 for t in traces if t.traceable)
    mean_depth = sum(t.hops for t in traces if t.traceable) / max(1, traceable)
    ops = {}
    for _, attrs in graph.nodes(data=True):
        ops[attrs.get("op", "?")] = ops.get(attrs.get("op", "?"), 0) + 1
    rows = [
        f"shares recorded on-chain: {len(result.events)}, ledger txs: "
        f"{platform.chain.ledger.total_transactions()}",
        shape.as_row("news-chain"),
        f"traceable to factual root: {traceable}/{len(article_nodes)} "
        f"({100 * traceable / max(1, len(article_nodes)):.0f}%), mean trace depth {mean_depth:.1f}",
        f"node ops: {dict(sorted(ops.items()))}",
        "vs E3: unbounded depth, fan-out >> 1, open membership — the dynamic "
        "architecture of Fig. 4",
    ]
    emit(benchmark, "E4 Fig.4 — news supply chain structure", rows)
    assert shape.max_depth > 4  # deeper than the fixed workflow
    assert traceable > 0
