"""Cascade engine scaling — the §VII million-user scale-out measured.

Two instruments:

- the scaling curve: synthesized CSR worlds at 1k/10k/100k/1M agents,
  12-round bulk cascades, reporting shares/sec, candidate-edge
  throughput, engine working-set bytes, and the process peak-RSS proxy;
- the oracle gate: a real (networkx-built, agent-bound) 100k world run
  through the scalar ``CascadeRunner`` and the vectorized bulk path,
  gating the vectorized engine at ≥ ``SPEEDUP_FLOOR``x shares/sec, plus
  a byte-identical scalar-vs-vectorized equivalence check on a
  small-world oracle world (keyed draws, full-fidelity path).

``REPRO_BENCH_SMOKE=1`` shrinks the worlds so CI exercises every path —
synthesis, bulk rounds, the scalar comparison, the equivalence check —
without the statistical gates (which need the full 100k/1M worlds and
quiet hardware).
"""

from __future__ import annotations

import os
import random
import resource
import time

from benchmarks.conftest import emit
from repro.corpus import CorpusGenerator
from repro.social import (
    CascadeRunner,
    CompiledCascadeGraph,
    FastCascadeRunner,
    KeyedDraws,
    bind_agents,
    build_social_world,
    make_population,
    small_world_follow_graph,
)

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: Acceptance gate: vectorized bulk path vs the scalar oracle at
#: GATE_AGENTS, in shares/sec.  Measured headroom is ~10x the floor
#: (see EXPERIMENTS.md), so the gate survives noisy hardware.
SPEEDUP_FLOOR = 20.0
GATE_AGENTS = 2_000 if _SMOKE else 100_000
#: Scalar rounds at the gate size: enough shares for a stable rate
#: without spending minutes in the per-edge Python loop.
GATE_SCALAR_ROUNDS = 4
CURVE_SIZES = (1_000, 5_000) if _SMOKE else (1_000, 10_000, 100_000, 1_000_000)
N_ROUNDS = 12


def _peak_rss_mb() -> float:
    """Process high-water RSS in MB (Linux reports ru_maxrss in KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _working_set_mb(compiled: CompiledCascadeGraph, n_roots: int) -> float:
    """Engine working set: CSR + agent arrays + per-root exposure rows."""
    arrays = (
        compiled.indptr, compiled.indices, compiled.share_probability,
        compiled.attention, compiled.kind_codes, compiled.journalist,
        compiled.malicious, compiled.mutate_probability,
        compiled.ring_codes, compiled.community,
    )
    total = sum(a.nbytes for a in arrays) + n_roots * compiled.n_agents
    return total / (1024.0 * 1024.0)


def test_cascade_scaling_curve(benchmark):
    """Shares/sec across three orders of magnitude, 1M included."""
    rows = []
    metrics: dict[str, float] = {}
    results = []

    def _sweep():
        for n_agents in CURVE_SIZES:
            t0 = time.perf_counter()
            compiled = CompiledCascadeGraph.synthesize(n_agents, mean_degree=8.0, seed=17)
            t_compile = time.perf_counter() - t0
            runner = FastCascadeRunner(compiled, seed=23)
            seed_nodes = list(range(0, n_agents, max(1, n_agents // 8)))[:8]
            t0 = time.perf_counter()
            stats = runner.run_stats(seed_nodes, n_rounds=N_ROUNDS, appeal=2.0, fake=True)
            t_run = time.perf_counter() - t0
            results.append((n_agents, t_compile, t_run, stats,
                            _working_set_mb(compiled, len(seed_nodes)), _peak_rss_mb()))
        return results

    benchmark.pedantic(_sweep, rounds=1, iterations=1)

    for n_agents, t_compile, t_run, stats, ws_mb, rss_mb in results:
        shares_per_sec = stats.total_shares / t_run if t_run else 0.0
        rows.append(
            f"{n_agents:>9,} agents: {stats.total_shares:>9,} shares in "
            f"{t_run:6.2f}s = {shares_per_sec:>11,.0f} shares/s  "
            f"(compile {t_compile:5.2f}s, working set {ws_mb:7.1f} MB, "
            f"peak RSS {rss_mb:7.0f} MB)"
        )
        metrics[f"shares_per_sec_{n_agents}"] = shares_per_sec
        metrics[f"run_seconds_{n_agents}"] = t_run
        metrics[f"working_set_mb_{n_agents}"] = ws_mb
        metrics[f"peak_rss_mb_{n_agents}"] = rss_mb
        # Completion contract: every size finishes all 12 rounds or dies
        # out naturally, with sane reach.
        assert stats.rounds_run <= N_ROUNDS
        assert max(stats.reach(i) for i in range(len(stats.roots))) <= n_agents
    if not _SMOKE:
        largest = results[-1]
        assert largest[0] == 1_000_000
        assert largest[3].rounds_run == N_ROUNDS, "1M-agent cascade must run 12 rounds"
        assert largest[3].total_shares > 0
    emit(benchmark, "Cascade engine — scaling curve (bulk path)", rows, metrics=metrics)


def _oracle_equivalence_check() -> int:
    """Byte-identical scalar-vs-vectorized run on a small-world world.

    Returns the shared share count (must be > 0 so the check is not
    vacuously true).  Raises AssertionError on any divergence.
    """
    graph = small_world_follow_graph(120, k_neighbors=6, rewire=0.2, seed=5)
    agents = make_population(120, random.Random(5), bot_fraction=0.1)
    bind_agents(graph, agents)
    draws = KeyedDraws(seed=99)

    def _run(engine):
        for node in graph.nodes():
            graph.nodes[node]["agent"].seen.clear()
        corpus = CorpusGenerator(seed=61)
        fact = corpus.factual(timestamp=0.0)
        fake = corpus.insertion_fake(fact, "agent-seed", 0.0)
        seeds = [(0, fact), (60, fake)]
        if engine == "scalar":
            runner = CascadeRunner(graph, corpus, rng=random.Random(1), draws=draws)
        else:
            runner = FastCascadeRunner(graph, corpus, seed=1, draws=draws)
        return runner.run(seeds, n_rounds=8)

    scalar, fast = _run("scalar"), _run("fast")
    assert scalar.events == fast.events
    assert scalar.articles == fast.articles
    assert scalar.exposed_agents == fast.exposed_agents
    assert scalar.exposures_by_round == fast.exposures_by_round
    assert scalar.shares_by_round == fast.shares_by_round
    assert len(scalar.events) > 0
    return len(scalar.events)


def test_vectorized_engine_gated_against_scalar_oracle(benchmark):
    """The ≥20x gate at 100k agents, plus the byte-identical oracle check."""
    graph, agents, corpus = build_social_world(n_agents=GATE_AGENTS, seed=9)
    fact = corpus.factual(topic="elections", timestamp=0.0)
    fake = corpus.insertion_fake(fact, "agent-seed", 0.0)

    measured: dict[str, float] = {}

    def _compare():
        t0 = time.perf_counter()
        scalar_result = CascadeRunner(graph, corpus, rng=random.Random(3)).run(
            [(0, fact), (1, fake)], n_rounds=GATE_SCALAR_ROUNDS
        )
        measured["scalar_seconds"] = time.perf_counter() - t0
        measured["scalar_shares"] = sum(scalar_result.shares_by_round)

        t0 = time.perf_counter()
        compiled = CompiledCascadeGraph.from_graph(graph)
        measured["compile_seconds"] = time.perf_counter() - t0
        fast = FastCascadeRunner(compiled, seed=3)
        t0 = time.perf_counter()
        stats = fast.run_stats([0, 1], n_rounds=N_ROUNDS, appeal=[1.2, 2.6],
                               fake=[False, True])
        measured["fast_seconds"] = time.perf_counter() - t0
        measured["fast_shares"] = stats.total_shares
        measured["oracle_events"] = _oracle_equivalence_check()
        return measured

    benchmark.pedantic(_compare, rounds=1, iterations=1)

    scalar_rate = measured["scalar_shares"] / measured["scalar_seconds"]
    fast_rate = measured["fast_shares"] / measured["fast_seconds"]
    speedup = fast_rate / scalar_rate if scalar_rate else float("inf")
    rows = [
        f"world: {GATE_AGENTS:,} agents (scale-free, bound population)",
        f"scalar oracle : {measured['scalar_shares']:>9,.0f} shares in "
        f"{measured['scalar_seconds']:6.2f}s = {scalar_rate:>11,.0f} shares/s "
        f"({GATE_SCALAR_ROUNDS} rounds)",
        f"vectorized    : {measured['fast_shares']:>9,.0f} shares in "
        f"{measured['fast_seconds']:6.2f}s = {fast_rate:>11,.0f} shares/s "
        f"({N_ROUNDS} rounds, compile {measured['compile_seconds']:.2f}s)",
        f"speedup       : {speedup:,.1f}x (floor {SPEEDUP_FLOOR:.0f}x)",
        f"oracle check  : byte-identical on {measured['oracle_events']:.0f} "
        "small-world share events",
    ]
    emit(benchmark, "Cascade engine — vectorized vs scalar oracle", rows, metrics={
        "speedup": speedup,
        "scalar_shares_per_sec": scalar_rate,
        "fast_shares_per_sec": fast_rate,
        "gate_agents": float(GATE_AGENTS),
    })
    if not _SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"vectorized speedup {speedup:.1f}x below the {SPEEDUP_FLOOR:.0f}x floor"
        )
