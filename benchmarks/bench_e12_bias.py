"""E12 — §IV claim: accountability "can prevent bias concerns that might
be originated from traditional majority decided crowd sourcing".

Workload: a 120-validator pool with a planted fraction of polarized
validators (they vote their side regardless of truth), swept from 0% to
80%.  A stream of 40 slanted fake articles is voted on; after each, the
reputation settlement runs (the thing the immutable vote ledger makes
possible).  Reports the final-stretch error rate (last 10 articles) of

- naive majority voting, and
- reputation/stake-weighted voting,

as a function of the biased fraction.  The expected crossover: majority
collapses past ~50% bias, weighted voting keeps working well beyond it
because polarized validators' weight decays with their on-ledger record.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit
from repro.core import ValidatorPool

BIAS_LEVELS = (0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8)
N_VALIDATORS = 120
N_ARTICLES = 40
EVAL_TAIL = 10


def _run_level(biased_fraction: float) -> tuple[float, float]:
    rng = random.Random(int(biased_fraction * 100) + 7)
    # Coordinated faction: every biased validator defends community 0's
    # slant — the capture scenario the paper's accountability targets.
    pool = ValidatorPool.generate(
        N_VALIDATORS, rng, biased_fraction=biased_fraction, biased_community=0
    )
    majority_errors = weighted_errors = 0
    for article_index in range(N_ARTICLES):
        # Fake articles slanted toward community 0 (the planted bias side).
        truth_factual = False
        votes = pool.collect_votes(truth_factual, rng, article_slant=0)
        majority_verdict = ValidatorPool.majority_share(votes) >= 0.5
        weighted_verdict = ValidatorPool.weighted_share(votes) >= 0.5
        if article_index >= N_ARTICLES - EVAL_TAIL:
            majority_errors += int(majority_verdict != truth_factual)
            weighted_errors += int(weighted_verdict != truth_factual)
        pool.settle(votes, outcome_factual=truth_factual)
    return majority_errors / EVAL_TAIL, weighted_errors / EVAL_TAIL


def _sweep():
    return {level: _run_level(level) for level in BIAS_LEVELS}


def test_e12_bias_resistance(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [f"{'biased fraction':>15} {'majority error':>15} {'weighted error':>15}"]
    for level, (majority_error, weighted_error) in results.items():
        rows.append(f"{level:>14.0%} {majority_error:>15.2f} {weighted_error:>15.2f}")
    rows.append("settlement uses the immutable on-chain vote history; without it "
                "(pure majority) polarization wins past ~50%")
    emit(benchmark, "E12 — crowd bias: majority vs accountability-weighted", rows)
    assert results[0.0][0] == results[0.0][1] == 0.0  # no bias, both fine
    assert results[0.7][0] == 1.0  # majority captured
    assert results[0.7][1] == 0.0  # weighted still correct
