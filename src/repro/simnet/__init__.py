"""Discrete-event network simulation substrate.

One deterministic clock (:class:`Simulator`) drives both the blockchain
consensus layer and the social-media cascade layer; :class:`Network`
provides latency, partitions, drops, and crash faults.
"""

from repro.simnet.chaos import ChaosSchedule, VoteFlooder
from repro.simnet.disk import DiskFault, SimDisk
from repro.simnet.events import Event, Simulator
from repro.simnet.failure import FailureEvent, FailureSchedule
from repro.simnet.latency import (
    FixedLatency,
    GeoLatency,
    LatencyModel,
    LogNormalLatency,
    ScaledLatency,
    UniformLatency,
)
from repro.simnet.network import Message, Network, NetworkNode, estimate_payload_size

__all__ = [
    "ChaosSchedule",
    "VoteFlooder",
    "DiskFault",
    "SimDisk",
    "Event",
    "Simulator",
    "FailureEvent",
    "FailureSchedule",
    "FixedLatency",
    "GeoLatency",
    "LatencyModel",
    "LogNormalLatency",
    "ScaledLatency",
    "UniformLatency",
    "Message",
    "Network",
    "NetworkNode",
    "estimate_payload_size",
]
