"""Round-robin proof-of-authority ordering (Fabric-style orderer).

The leader for height *h* is ``validators[h % n]``.  The leader batches
its mempool into a block every ``block_interval`` and broadcasts it;
followers accept a block iff it comes from the expected leader and
extends their chain.  There is no voting — authority is the trust model,
exactly like a Fabric ordering service — which makes this the throughput
upper bound PBFT is compared against in E9.

Crash behaviour: if the scheduled leader is crashed, that height simply
stalls until rotation reaches a live leader (followers accept any
height-h block from the height-h leader, so a recovered leader can fill
the gap).  A production orderer would failover faster; for experiments
the stall *is* the observable cost of leader failure.

Catch-up is delegated to the peer's
:class:`~repro.chain.sync.SyncManager`: height-ahead blocks are buffered
there and the gap is fetched with retries and provider failover.  This
replaces the orderer's old ad-hoc anti-entropy probe, which only fired
while the mempool was non-empty (a behind peer with no pending work
stalled forever) and never retried a probe lost to drops or a crashed
provider.  A fetched block is applied only if its proposer is the
expected leader for its height (:meth:`RoundRobinOrderer.
verify_synced_block`).
"""

from __future__ import annotations

from typing import Any

from repro.chain.block import Block
from repro.chain.consensus.base import ConsensusEngine
from repro.simnet.network import Message

__all__ = ["RoundRobinOrderer"]

_KIND_BLOCK = "poa-block"


class RoundRobinOrderer(ConsensusEngine):
    """Rotating single-leader block production."""

    def __init__(
        self,
        validators: list[str],
        block_interval: float = 1.0,
        max_block_txs: int = 500,
    ):
        super().__init__()
        if not validators:
            raise ValueError("need at least one validator")
        self.validators = list(validators)
        self.block_interval = block_interval
        self.max_block_txs = max_block_txs
        self._tick_scheduled = False
        self._tick_event = None

    def leader_for(self, height: int) -> str:
        return self.validators[height % len(self.validators)]

    def start(self) -> None:
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        if self.stopped or self._tick_scheduled:
            return
        self._tick_scheduled = True
        assert self.peer is not None
        self._tick_event = self.peer.sim.schedule(
            self.block_interval, self._tick, label=f"poa-tick:{self.peer.node_id}"
        )

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self.stopped:
            return
        peer = self.peer
        assert peer is not None
        next_height = peer.ledger.height + 1
        # A leader that knows it is behind must not propose: its stale
        # block would be rejected everywhere but committed locally — a
        # self-inflicted fork.  (A leader that is behind *unknowingly*
        # still has the pre-announcement race; the sync announcements
        # shrink that window to at most one announce interval.)
        if (
            self.leader_for(next_height) == peer.node_id
            and not peer.crashed
            and not peer.sync.is_lagging()
        ):
            # Rotation reached this validator: its turn to order a block.
            peer.obs.counter("poa.leader_turns", peer=peer.node_id).inc()
            self._propose(next_height)
        self._schedule_tick()

    def _propose(self, height: int) -> None:
        peer = self.peer
        assert peer is not None
        batch = peer.mempool.take(self.max_block_txs)
        if not batch:
            return
        self._observe_order_wait(batch)
        peer.obs.counter("poa.blocks_proposed", peer=peer.node_id).inc()
        block = Block.build(
            height=height,
            prev_hash=peer.ledger.head.block_hash,
            timestamp=peer.sim.now,
            proposer=peer.node_id,
            transactions=batch,
        )
        peer.broadcast(_KIND_BLOCK, block)
        peer.commit_block(block)  # leader commits its own block immediately

    def verify_synced_block(self, block: Block, proof: Any) -> bool:
        """Authority is the proof: the proposer must be the rotation's
        expected leader for that height."""
        return block.proposer == self.leader_for(block.height)

    def on_restart(self) -> None:
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        self._tick_scheduled = False
        self.start()

    def on_message(self, message: Message) -> bool:
        peer = self.peer
        assert peer is not None
        if message.kind != _KIND_BLOCK:
            return False
        # The SyncManager owns the apply path: it enforces the leader
        # check (via verify_synced_block), buffers height-ahead blocks,
        # and fetches any gap from the sender or another live validator.
        peer.sync.offer_block(message.payload, None, src=message.src)
        return True
