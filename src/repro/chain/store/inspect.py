"""Offline inspection of a durable store's artifacts.

Backs the ``repro-news store`` CLI subcommand: given the raw bytes of a
store's files (from a live :class:`~repro.simnet.disk.SimDisk` or a
dumped directory), re-run the same verify-before-trust checks recovery
uses and report what a recovery *would* find — valid records, the torn
or corrupt tail, snapshot health, and the implied degradation ladder.
Inspection never mutates anything.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

from repro.chain.store.codec import decode_obj
from repro.chain.store.log import LOG_NAME, scan_log_bytes
from repro.chain.store.snapshots import SNAPSHOT_PREFIX

__all__ = ["inspect_files", "inspect_disk", "render_inspection"]

_SNAP_HEADER = struct.Struct(">2sII")


def _inspect_snapshot(name: str, data: bytes) -> dict[str, Any]:
    info: dict[str, Any] = {"file": name, "bytes": len(data), "valid": False}
    if len(data) < _SNAP_HEADER.size:
        info["problem"] = "shorter than header"
        return info
    magic, length, crc = _SNAP_HEADER.unpack_from(data, 0)
    if magic != b"RS":
        info["problem"] = "bad magic"
        return info
    payload = data[_SNAP_HEADER.size : _SNAP_HEADER.size + length]
    if len(payload) < length:
        info["problem"] = "truncated payload"
        return info
    if zlib.crc32(payload) != crc:
        info["problem"] = "CRC mismatch"
        return info
    try:
        obj = decode_obj(payload)
    except ValueError:
        info["problem"] = "undecodable payload"
        return info
    info["valid"] = True
    info["height"] = obj.get("height")
    info["block_hash"] = obj.get("block_hash", "")[:16]
    info["state_keys"] = len(obj.get("state", {}).get("entries", []))
    info["receipts"] = len(obj.get("receipts", []))
    return info


def _inspect_sqlite_image(name: str, data: bytes) -> dict[str, Any]:
    """Frame-level health of a serialized sqlite3 snapshot image
    (``chain-<height>.sqlite``, see :mod:`repro.chain.store.sqlite`)."""
    from repro.chain.store.sqlite import _image_height

    info: dict[str, Any] = {"file": name, "bytes": len(data), "valid": False}
    if len(data) < _SNAP_HEADER.size:
        info["problem"] = "shorter than header"
        return info
    magic, length, crc = _SNAP_HEADER.unpack_from(data, 0)
    if magic != b"RQ":
        info["problem"] = "bad magic"
        return info
    payload = data[_SNAP_HEADER.size : _SNAP_HEADER.size + length]
    if len(payload) < length:
        info["problem"] = "truncated payload"
        return info
    if zlib.crc32(payload) != crc:
        info["problem"] = "CRC mismatch"
        return info
    info["valid"] = True
    info["height"] = _image_height(name)
    info["kind"] = "sqlite-image"
    return info


def inspect_files(files: dict[str, bytes]) -> dict[str, Any]:
    """Structured health report over ``{file name: durable bytes}``."""
    from repro.chain.store.sqlite import _image_height

    log_data = files.get(LOG_NAME, b"")
    scan = scan_log_bytes(log_data)
    snapshots = [
        _inspect_snapshot(name, data)
        for name, data in sorted(files.items())
        if name.startswith(SNAPSHOT_PREFIX)
    ]
    snapshots += [
        _inspect_sqlite_image(name, data)
        for name, data in sorted(files.items())
        if _image_height(name) is not None
    ]
    snapshots.sort(key=lambda s: (s.get("height") is None, s.get("height"), s["file"]))
    valid_snap_heights = [s["height"] for s in snapshots if s["valid"] and s["height"] <= scan.tip]
    recovery_snapshot = max(valid_snap_heights, default=0)
    return {
        "log": {
            "bytes": len(log_data),
            "valid_bytes": scan.valid_length,
            "garbage_bytes": len(log_data) - scan.valid_length,
            "records": len(scan.records),
            "tip": scan.tip,
            "failure": scan.failure,
        },
        "snapshots": snapshots,
        "recovery": {
            "snapshot_height": recovery_snapshot,
            "tail_records": max(0, scan.tip - recovery_snapshot),
            "mode": (
                "snapshot+tail" if recovery_snapshot
                else ("full-replay" if scan.records else "empty")
            ),
        },
    }


def inspect_disk(disk: Any) -> dict[str, Any]:
    """Inspect a live :class:`~repro.simnet.disk.SimDisk` (durable view)."""
    info = inspect_files({name: disk.read(name) for name in disk.names()})
    info["disk"] = disk.stats()
    return info


def render_inspection(info: dict[str, Any]) -> str:
    """Human-readable rendering for the CLI."""
    log = info["log"]
    lines = [
        "block log:",
        f"  {log['records']} valid records, tip height {log['tip']}",
        f"  {log['valid_bytes']}/{log['bytes']} bytes verified"
        + (f" ({log['garbage_bytes']} garbage: {log['failure']})" if log["failure"] else ""),
        "snapshots:",
    ]
    if not info["snapshots"]:
        lines.append("  (none)")
    for snap in info["snapshots"]:
        if not snap["valid"]:
            lines.append(f"  {snap['file']}: INVALID ({snap['problem']})")
        elif snap.get("kind") == "sqlite-image":
            lines.append(
                f"  {snap['file']}: OK, height {snap['height']}, "
                f"sqlite image ({snap['bytes']}B)"
            )
        else:
            lines.append(
                f"  {snap['file']}: OK, height {snap['height']}, "
                f"{snap['state_keys']} state keys, {snap['receipts']} receipts"
            )
    recovery = info["recovery"]
    lines.append(
        f"recovery would use: {recovery['mode']} "
        f"(snapshot {recovery['snapshot_height']}, "
        f"{recovery['tail_records']} tail records)"
    )
    disk = info.get("disk")
    if disk:
        lines.append(
            f"disk: {disk['fsyncs']} fsyncs, {disk['bytes_synced']}B synced, "
            f"{disk['crashes']} crashes, {len(disk['faults'])} injected faults"
        )
        for fault in disk["faults"]:
            lines.append(f"  fault: {fault['kind']} on {fault['file']} ({fault['detail']})")
    return "\n".join(lines)
