"""Explorer query latency: materialized index vs ledger scan at 100k blocks.

The paper's news-consumer reads dominate the platform's workload
("who published this, what did this account endorse"), and before
:mod:`repro.chain.index` every such read was an O(chain) ledger scan.
This benchmark builds a randomized 100k-block chain (1k under
``REPRO_BENCH_SMOKE=1``), runs the same explorer query battery through
both paths, and asserts the two contracts the index ships under:

- **byte-identical answers** — every query in the battery returns
  exactly the same rows through ``ChainIndex`` as through the scan
  fallback (and ``verify_against`` finds no drift), so the index may
  serve reads while the scan stays the oracle;
- **p95 at least 10x faster** — over the battery, the index path's p95
  latency beats the scan's by >= 10x at the full size.  The battery
  deliberately includes the scan's worst cases (a contract that only
  ever appears in the oldest 0.1% of the chain, an absent sender): the
  fixed newest-first scan stops at ``limit``, so *common* queries are
  cheap either way — it is the rare/absent ones where O(chain) still
  bites and the interned views change the complexity class.

The ``@``-suffixed battery names in the table mark the queries whose
scan must walk (nearly) the whole chain.
"""

from __future__ import annotations

import os
import random
import statistics
import time

from benchmarks.conftest import emit
from repro.chain.block import Block
from repro.chain.explorer import chain_summary, find_transactions
from repro.chain.index import ChainIndex
from repro.chain.ledger import Ledger
from repro.chain.transaction import Transaction
from repro.crypto.hashing import sha256_hex

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
N_BLOCKS = 1_000 if _SMOKE else 100_000
#: The "registry" contract only ever appears in the oldest RARE_BLOCKS
#: blocks — a newest-first scan for it walks essentially the whole chain.
RARE_BLOCKS = max(10, N_BLOCKS // 1000)
INDEX_REPEATS = 5
SPEEDUP_FLOOR = 10.0

_CONTRACTS = (
    ("news", ("publish", "retract")),
    ("endorse", ("sign",)),
    ("votes", ("cast", "tally")),
)
_RARE = ("registry", ("charter",))


def _bench_tx(nonce: int, sender: str, contract: str, method: str) -> Transaction:
    """Structurally complete, dummy-signed (storage cost, not Ed25519)."""
    tx_id = sha256_hex(f"explorer-tx-{nonce}".encode("utf-8"))
    return Transaction(
        sender=sender, public_key_hex="00", contract=contract, method=method,
        args={"n": nonce}, nonce=nonce, timestamp=0.0, signature_hex="00",
        tx_id=tx_id, write_set={f"{contract}/{nonce % 97}": nonce},
        events=({"kind": f"{method}d", "n": nonce},),
    )


def _build_chain(seed: int) -> tuple[Ledger, ChainIndex, dict]:
    """A randomized chain: 20 senders, 3 common contracts, one contract
    and one sender confined to the oldest blocks, ~10% invalid txs."""
    rng = random.Random(seed)
    senders = [f"acct:{sha256_hex(f'sender-{i}'.encode())[:40]}" for i in range(20)]
    rare_sender = f"acct:{sha256_hex(b'rare-sender')[:40]}"
    ledger = Ledger()
    index = ChainIndex()
    for height in range(1, N_BLOCKS + 1):
        nonce = height - 1
        if height <= RARE_BLOCKS and height % 2 == 0:
            contract, methods = _RARE
            sender = rare_sender
        else:
            contract, methods = rng.choice(_CONTRACTS)
            sender = rng.choice(senders)
        tx = _bench_tx(nonce, sender, contract, rng.choice(methods))
        block = Block.build(height, ledger.head.block_hash, float(height), "p", [tx])
        validity = [rng.random() > 0.1]
        ledger.append(block, validity)
        index.on_commit(block, validity)
    population = {"senders": senders, "rare_sender": rare_sender}
    return ledger, index, population


def _battery(population: dict) -> list[tuple[str, dict]]:
    """Named query mix; ``@`` marks the scan path's O(chain) worst cases."""
    senders = population["senders"]
    return [
        ("rare-contract@", {"contract": _RARE[0]}),
        ("rare-pair@", {"contract": _RARE[0], "method": _RARE[1][0]}),
        ("rare-sender@", {"sender": population["rare_sender"]}),
        ("absent-contract@", {"contract": "nonesuch"}),
        ("absent-sender@", {"sender": "acct:" + "0" * 40}),
        ("common-contract", {"contract": "news", "limit": 20}),
        ("common-sender", {"sender": senders[0], "limit": 20}),
        ("sender+contract", {"sender": senders[1], "contract": "votes"}),
        ("method-only", {"method": "publish", "limit": 20}),
        ("unfiltered", {"limit": 50}),
    ]


def _timed(fn) -> tuple[float, object]:
    started = time.perf_counter()
    out = fn()
    return time.perf_counter() - started, out


def _p95(samples: list[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]


def _run() -> dict:
    build_s, (ledger, index, population) = _timed(lambda: _build_chain(seed=1789))
    battery = _battery(population)

    per_query: dict[str, dict] = {}
    scan_times: list[float] = []
    index_times: list[float] = []
    for name, kwargs in battery:
        scan_s, scan_rows = _timed(lambda k=kwargs: find_transactions(ledger, **k))
        samples = []
        for _ in range(INDEX_REPEATS):
            index_s, index_rows = _timed(
                lambda k=kwargs: find_transactions(ledger, index=index, **k)
            )
            samples.append(index_s)
        assert index_rows == scan_rows, f"paths diverge on {name}: {kwargs}"
        scan_times.append(scan_s)
        index_times.extend(samples)
        per_query[name] = {
            "scan_s": scan_s,
            "index_s": statistics.median(samples),
            "rows": len(scan_rows),
        }

    summary_scan_s, scan_summary = _timed(lambda: chain_summary(ledger))
    summary_index_s, index_summary = _timed(lambda: chain_summary(ledger, index=index))
    assert index_summary == scan_summary, "chain_summary paths diverge"
    assert index.verify_against(ledger) == [], "index drifted from the chain"

    return {
        "n_blocks": N_BLOCKS,
        "build_s": build_s,
        "per_query": per_query,
        "scan_p95_s": _p95(scan_times),
        "index_p95_s": _p95(index_times),
        "summary_scan_s": summary_scan_s,
        "summary_index_s": summary_index_s,
        "summary": scan_summary,
    }


def test_explorer_index_vs_scan(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    per_query = result["per_query"]
    rows = [f"{'query':>16} {'rows':>5} {'scan(ms)':>9} {'index(ms)':>9} {'x':>8}"]
    for name, q in per_query.items():
        ratio = q["scan_s"] / q["index_s"] if q["index_s"] else float("inf")
        rows.append(
            f"{name:>16} {q['rows']:>5} {q['scan_s'] * 1e3:>9.3f} "
            f"{q['index_s'] * 1e3:>9.3f} {ratio:>8.1f}"
        )
    speedup = result["scan_p95_s"] / result["index_p95_s"]
    summary_speedup = result["summary_scan_s"] / result["summary_index_s"]
    rows.append(
        f"{result['n_blocks']} blocks "
        f"({result['summary']['transactions']} txs, built in {result['build_s']:.1f}s): "
        f"battery p95 scan {result['scan_p95_s'] * 1e3:.2f}ms vs index "
        f"{result['index_p95_s'] * 1e3:.3f}ms -> {speedup:.0f}x"
    )
    rows.append(
        f"chain_summary: scan {result['summary_scan_s'] * 1e3:.2f}ms vs index "
        f"{result['summary_index_s'] * 1e3:.3f}ms -> {summary_speedup:.0f}x"
    )
    rows.append("shape: every battery query byte-identical across paths; "
                "@-queries are the scan's O(chain) worst cases the index "
                "answers from its views")
    emit(benchmark, "Explorer — indexed queries vs ledger scan", rows, metrics={
        "n_blocks": result["n_blocks"],
        "scan_p95_ms": round(result["scan_p95_s"] * 1e3, 4),
        "index_p95_ms": round(result["index_p95_s"] * 1e3, 4),
        "p95_speedup": round(speedup, 1),
        "summary_speedup": round(summary_speedup, 1),
    })

    # Equivalence asserted per query inside _run; the perf gate only
    # binds at full size (smoke chains are too small for stable ratios).
    if not _SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"index p95 speedup {speedup:.1f}x below the {SPEEDUP_FLOOR:.0f}x floor"
        )
