"""A fault-injectable simulated disk, one per node.

The durable store (:mod:`repro.chain.store`) writes its block log and
snapshots through a :class:`SimDisk` instead of the real filesystem, so
crash-consistency faults become schedulable events just like crashes and
partitions.  The model mirrors what a real kernel gives you:

- ``append``/``write`` land in a **pending** buffer — bytes the OS has
  but has not promised to keep;
- ``fsync`` moves pending bytes into the **durable** image and records a
  *fsync generation mark* (the durable length at that point).  Only
  durable bytes survive :meth:`on_crash`;
- a **torn write** (armed via :meth:`arm_torn_write`) means the crash
  interrupts the last fsync'd write mid-flight: on crash the final
  fsync generation is rolled back and a random *prefix* of its bytes is
  kept — exactly the partial sector pattern recovery code must detect;
- a **partial flush** (:meth:`arm_partial_flush`) models a drive that
  acknowledged ``fsync`` but lied: the last *k* fsync generations of the
  log vanish wholesale at crash time;
- a **bit flip** (:meth:`corrupt`) flips one bit of the durable image in
  place — latent media corruption that only surfaces on the next read.

Files carry a *role* tag (``"log"`` / ``"snapshot"``) so fault
injectors can aim at an artifact class without knowing file names.
All randomness comes from a seeded ``random.Random``, so every fault
plan is replayable from its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["DiskFault", "SimDisk"]


@dataclass(frozen=True)
class DiskFault:
    """One injected disk fault that actually took effect."""

    kind: str  # "torn-write" | "partial-flush" | "bit-flip"
    file: str
    detail: str


class SimDisk:
    """In-model block device: durable bytes vs. pending (unsynced) bytes."""

    def __init__(self, node_id: str = "", rng: random.Random | None = None):
        self.node_id = node_id
        self.rng = rng if rng is not None else random.Random(f"disk:{node_id}")
        self._durable: dict[str, bytearray] = {}
        self._pending: dict[str, bytearray] = {}
        #: file -> durable length after each acknowledged fsync, oldest
        #: first.  This is the granularity partial-flush rollback works at.
        self._marks: dict[str, list[int]] = {}
        self._roles: dict[str, str] = {}
        self._armed_torn: str | None = None  # role the tear aims at
        self._armed_partial: tuple[str, int] | None = None  # (role, k)
        self.faults: list[DiskFault] = []
        self.crashes = 0
        self.fsyncs = 0
        self.bytes_synced = 0

    # -- plain I/O ---------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        """Buffer *data* at the end of *name* (not durable until fsync)."""
        self._pending.setdefault(name, bytearray()).extend(data)

    def fsync(self, name: str) -> None:
        """Flush pending bytes of *name* into the durable image."""
        self.fsyncs += 1
        pending = self._pending.pop(name, None)
        durable = self._durable.setdefault(name, bytearray())
        if pending:
            durable.extend(pending)
            self.bytes_synced += len(pending)
        self._marks.setdefault(name, []).append(len(durable))

    def read(self, name: str) -> bytes:
        """The durable image of *name* (what survives a crash)."""
        return bytes(self._durable.get(name, b""))

    def size(self, name: str) -> int:
        return len(self._durable.get(name, b""))

    def exists(self, name: str) -> bool:
        return name in self._durable

    def names(self) -> list[str]:
        return sorted(self._durable)

    def truncate(self, name: str, length: int) -> None:
        """Repair primitive: cut the durable image (and stale marks)."""
        durable = self._durable.setdefault(name, bytearray())
        del durable[length:]
        self._pending.pop(name, None)
        self._marks[name] = [m for m in self._marks.get(name, []) if m <= length]

    def delete(self, name: str) -> None:
        self._durable.pop(name, None)
        self._pending.pop(name, None)
        self._marks.pop(name, None)
        self._roles.pop(name, None)

    # -- roles -------------------------------------------------------------

    def set_role(self, name: str, role: str) -> None:
        """Tag *name* as ``"log"`` / ``"snapshot"`` for fault targeting."""
        self._roles[name] = role

    def names_with_role(self, role: str) -> list[str]:
        return sorted(n for n, r in self._roles.items() if r == role and n in self._durable)

    # -- fault injection ---------------------------------------------------

    def arm_torn_write(self, role: str = "log") -> None:
        """At the next crash, the newest fsync of a *role* file is torn:
        its generation is rolled back but a random prefix of its bytes
        survives (the write was interrupted mid-flight)."""
        self._armed_torn = role

    def arm_partial_flush(self, k: int = 1, role: str = "log") -> None:
        """At the next crash, the last *k* acknowledged fsync generations
        of each *role* file are silently lost (the drive lied)."""
        self._armed_partial = (role, max(1, k))

    def corrupt(
        self, role: str = "log", offset: int | None = None, name: str | None = None
    ) -> str | None:
        """Flip one bit of the durable image of the newest *role* file
        (or of *name*, when given explicitly).

        Returns the corrupted file name, or ``None`` when no durable file
        of that role exists yet (nothing to corrupt).
        """
        if name is None:
            candidates = self.names_with_role(role)
            candidates = [n for n in candidates if self._durable.get(n)]
            if not candidates:
                return None
            name = candidates[-1]
        elif not self._durable.get(name):
            return None
        durable = self._durable[name]
        if offset is None:
            offset = self.rng.randrange(len(durable))
        offset = min(offset, len(durable) - 1)
        durable[offset] ^= 1 << self.rng.randrange(8)
        self.faults.append(DiskFault("bit-flip", name, f"offset={offset}"))
        return name

    def on_crash(self) -> list[DiskFault]:
        """Apply crash semantics: pending bytes die, armed faults fire.

        Returns the faults that actually took effect at this crash (an
        armed fault against a file with no fsync history is a no-op).
        """
        self.crashes += 1
        fired: list[DiskFault] = []
        self._pending.clear()
        if self._armed_partial is not None:
            role, k = self._armed_partial
            self._armed_partial = None
            for name in self.names_with_role(role):
                marks = self._marks.get(name, [])
                if not marks:
                    continue
                keep = marks[-1 - k] if len(marks) > k else 0
                lost = len(self._durable[name]) - keep
                if lost <= 0:
                    continue
                self.truncate(name, keep)
                fault = DiskFault("partial-flush", name, f"lost={lost}B k={k}")
                self.faults.append(fault)
                fired.append(fault)
        if self._armed_torn is not None:
            role = self._armed_torn
            self._armed_torn = None
            for name in self.names_with_role(role):
                marks = self._marks.get(name, [])
                if not marks:
                    continue
                start = marks[-2] if len(marks) >= 2 else 0
                segment = len(self._durable[name]) - start
                if segment <= 0:
                    continue
                keep = self.rng.randrange(segment)  # 0..segment-1: always torn
                self.truncate(name, start + keep)
                fault = DiskFault("torn-write", name, f"kept={keep}B of {segment}B")
                self.faults.append(fault)
                fired.append(fault)
        return fired

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict[str, object]:
        return {
            "files": {n: len(b) for n, b in sorted(self._durable.items())},
            "fsyncs": self.fsyncs,
            "bytes_synced": self.bytes_synced,
            "crashes": self.crashes,
            "faults": [
                {"kind": f.kind, "file": f.file, "detail": f.detail} for f in self.faults
            ],
        }
