"""TrustingNewsPlatform facade: the integrated pipeline."""

import pytest

from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.errors import IdentityError, PlatformError


@pytest.fixture
def world(platform):
    """Platform with facts seeded, a publisher, a journalist, a troll."""
    gen = CorpusGenerator(seed=70)
    facts = [gen.factual(topic="politics") for _ in range(3)]
    for index, fact in enumerate(facts):
        platform.seed_fact(f"f-{index}", fact.text, "public-record", "politics")
    platform.register_participant("acme", role="publisher")
    platform.create_distribution_platform("acme", "acme-news")
    platform.create_news_room("acme", "acme-news", "desk", "politics")
    for name in ("jane", "troll"):
        platform.register_participant(name, role="journalist")
        platform.authenticate_journalist("acme-news", name)
    return platform, gen, facts


def test_publish_links_to_fact_root(world):
    platform, gen, facts = world
    report = relay(facts[0], "jane", 1.0)
    published = platform.publish_article(
        "jane", "acme-news", "desk", "a-1", report.text, "politics"
    )
    assert published.fact_roots == ("f-0",)
    assert published.modification_degree == pytest.approx(0.0)
    assert platform.trace("a-1").traceable


def test_fake_ranks_below_factual(world):
    platform, gen, facts = world
    report = relay(facts[0], "jane", 1.0)
    platform.publish_article("jane", "acme-news", "desk", "a-1", report.text, "politics")
    fake = gen.malicious_derivation(report, "troll", 2.0)
    platform.publish_article("troll", "acme-news", "desk", "a-2", fake.text, "politics")
    factual_rank = platform.rank_article("a-1")
    fake_rank = platform.rank_article("a-2")
    assert factual_rank.score > fake_rank.score
    assert fake_rank.provenance_score < 1.0


def test_crowd_votes_feed_ranking(world):
    platform, gen, facts = world
    platform.publish_article("jane", "acme-news", "desk", "a-1",
                             relay(facts[1], "jane", 1.0).text, "politics")
    for index in range(4):
        platform.register_participant(f"checker-{index}", role="checker")
        platform.cast_vote(f"checker-{index}", "a-1", verdict=index != 0)
    assert platform.crowd_score("a-1") == pytest.approx(0.75)
    ranked = platform.rank_article("a-1")
    assert ranked.crowd_score == pytest.approx(0.75)


def test_crowd_score_none_without_votes(world):
    platform, gen, facts = world
    platform.publish_article("jane", "acme-news", "desk", "a-1",
                             relay(facts[1], "jane", 1.0).text, "politics")
    assert platform.crowd_score("a-1") is None


def test_ranking_recorded_on_chain(world):
    platform, gen, facts = world
    platform.publish_article("jane", "acme-news", "desk", "a-1",
                             relay(facts[0], "jane", 1.0).text, "politics")
    platform.rank_article("a-1")
    recorded = platform.chain.query("supplychain", "get_ranking", {"article_id": "a-1"})
    assert recorded is not None and 0 <= recorded["final_score"] <= 1


def test_promotion_gate(world):
    platform, gen, facts = world
    platform.publish_article("jane", "acme-news", "desk", "a-1",
                             relay(facts[0], "jane", 1.0).text, "politics")
    fake = gen.insertion_fake(relay(facts[0], "x", 0.0), "troll", 1.0, n_insertions=4)
    platform.publish_article("troll", "acme-news", "desk", "a-2", fake.text, "politics")
    # Fact-checkers weigh in against the fake (hybrid gate: provenance
    # alone cannot catch minimal-edit distortions — that is E6's point).
    for index in range(3):
        platform.register_participant(f"gatekeeper-{index}", role="checker")
        platform.cast_vote(f"gatekeeper-{index}", "a-2", verdict=False)
    platform.rank_article("a-1")
    platform.rank_article("a-2")
    platform.promote_to_factual("a-1")
    assert any(f.startswith("promoted-") for f in platform.facts())
    with pytest.raises(PlatformError, match="below promotion threshold"):
        platform.promote_to_factual("a-2")


def test_promotion_requires_prior_ranking(world):
    platform, gen, facts = world
    platform.publish_article("jane", "acme-news", "desk", "a-1",
                             relay(facts[0], "jane", 1.0).text, "politics")
    with pytest.raises(PlatformError, match="no recorded ranking"):
        platform.promote_to_factual("a-1")


def test_promoted_fact_becomes_provenance_root(world):
    platform, gen, facts = world
    platform.publish_article("jane", "acme-news", "desk", "a-1",
                             relay(facts[0], "jane", 1.0).text, "politics")
    platform.rank_article("a-1")
    platform.promote_to_factual("a-1", fact_id="new-fact")
    # A later relay of a-1's text should resolve to the new fact too.
    candidates = platform.index.discover_parents(relay(facts[0], "y", 3.0).text, max_parents=5)
    assert any(c.article_id == "fact:new-fact" for c in candidates)


def test_ai_scores_attached_when_trained(world, trained_scorer):
    platform, gen, facts = world
    platform.scorer = trained_scorer
    fake = gen.malicious_derivation(relay(facts[2], "x", 0.0), "troll", 1.0)
    published_fake = platform.publish_article("troll", "acme-news", "desk", "a-9",
                                              fake.text, "politics")
    published_real = platform.publish_article("jane", "acme-news", "desk", "a-10",
                                              relay(facts[2], "jane", 4.0).text, "politics")
    assert published_fake.ai_score is not None
    assert published_fake.ai_score > published_real.ai_score


def test_accountability_via_platform(world):
    platform, gen, facts = world
    report = relay(facts[0], "jane", 1.0)
    platform.publish_article("jane", "acme-news", "desk", "a-1", report.text, "politics")
    fake = gen.malicious_derivation(report, "troll", 2.0)
    platform.publish_article("troll", "acme-news", "desk", "a-2", fake.text, "politics")
    platform.register_participant("relayer", role="journalist")
    platform.authenticate_journalist("acme-news", "relayer")
    laundered = relay(fake, "relayer", 3.0)
    platform.publish_article("relayer", "acme-news", "desk", "a-3", laundered.text, "politics")
    assert platform.accountable_author("a-3") == platform.address_of("troll")


def test_stats_reflect_activity(world):
    platform, gen, facts = world
    platform.publish_article("jane", "acme-news", "desk", "a-1",
                             relay(facts[0], "jane", 1.0).text, "politics")
    stats = platform.stats()
    assert stats["articles"] == 1
    assert stats["facts"] == 3
    assert stats["blocks"] > 0
    assert stats["transactions"] >= stats["blocks"]


def test_duplicate_account_name_rejected(platform):
    platform.register_participant("dup", role="consumer")
    with pytest.raises(IdentityError):
        platform.register_participant("dup", role="consumer")


def test_unknown_account_raises(platform):
    with pytest.raises(IdentityError):
        platform.account("nobody")


def test_graph_cache_invalidates(world):
    platform, gen, facts = world
    graph_before = platform.graph
    platform.publish_article("jane", "acme-news", "desk", "a-1",
                             relay(facts[0], "jane", 1.0).text, "politics")
    graph_after = platform.graph
    assert graph_after.number_of_nodes() > graph_before.number_of_nodes()
