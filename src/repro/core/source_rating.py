"""NewsGuard-style source ratings, computed from the ledger (§II).

The paper reviews NewsGuard's trained-journalist ratings (green/red by
criteria like "publishes false content", "discloses ownership").  On
this platform the equivalent judgments need no panel: every criterion
is *measurable* from committed state —

- false-content share: recorded rankings of the platform's articles,
- creator accountability: verified-identity share of its membership,
- editorial diligence: use of review/rejection versus rubber-stamping,
- provenance discipline: how much of its output traces to fact roots.

The composite maps to NewsGuard's color scheme (green/orange/red, grey
for not-yet-ratable).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.chain.ledger import Ledger
from repro.core.supplychain import trace_to_factual_root

__all__ = ["SourceRating", "rate_distribution_platform"]

# Composite score cutoffs, NewsGuard-style colors.
_GREEN = 0.75
_ORANGE = 0.5
# Minimum article count before a rating is meaningful.
_MIN_ARTICLES = 3


@dataclass(frozen=True)
class SourceRating:
    """One distribution platform's ledger-derived rating."""

    platform_name: str
    articles: int
    false_content_share: float  # recorded rankings below 0.5
    verified_member_share: float
    editorial_diligence: float  # rejections+reviews observed / articles
    provenance_discipline: float  # mean provenance of its output
    composite: float
    color: str  # green | orange | red | grey

    def as_row(self) -> str:
        return (
            f"{self.platform_name:<16} {self.color:<6} composite={self.composite:.2f} "
            f"false={self.false_content_share:.2f} verified={self.verified_member_share:.2f} "
            f"diligence={self.editorial_diligence:.2f} provenance={self.provenance_discipline:.2f}"
        )


def rate_distribution_platform(
    ledger: Ledger, graph: nx.DiGraph, platform_name: str
) -> SourceRating:
    """Compute a platform's rating from its on-ledger record."""
    # Articles that went through this platform's rooms.
    article_ids = [
        event["article_id"]
        for event in ledger.events(contract="newsroom", kind="draft-submitted")
        if _platform_of_room(ledger, event["room"]) == platform_name
    ]
    member_addresses = set()
    verified_addresses = set()
    for event in ledger.events(contract="newsroom", kind="journalist-authenticated"):
        if event["platform"] == platform_name:
            member_addresses.add(event["address"])
    for event in ledger.events(contract="identity", kind="identity-verified"):
        verified_addresses.add(event["address"])
    verified_share = (
        len(member_addresses & verified_addresses) / len(member_addresses)
        if member_addresses
        else 1.0  # owner-only platform: the owner had to be verified
    )
    # Editorial diligence: review + rejection events over drafts.
    reviews = sum(
        1 for event in ledger.events(contract="newsroom", kind="review-started")
        if event["article_id"] in set(article_ids)
    )
    rejections = sum(
        1 for event in ledger.events(contract="newsroom", kind="article-rejected")
        if event["article_id"] in set(article_ids)
    )
    diligence = min(1.0, (reviews + rejections) / len(article_ids)) if article_ids else 0.0
    # False-content share from recorded rankings.
    rankings = {
        event["article_id"]: event["final_score"]
        for event in ledger.events(contract="supplychain", kind="article-ranked")
    }
    ranked = [rankings[a] for a in article_ids if a in rankings]
    false_share = (
        sum(1 for score in ranked if score < 0.5) / len(ranked) if ranked else 0.0
    )
    # Provenance discipline over the platform's recorded articles.
    provenance_scores = [
        trace_to_factual_root(graph, article_id).provenance_score
        for article_id in article_ids
        if article_id in graph
    ]
    provenance = sum(provenance_scores) / len(provenance_scores) if provenance_scores else 0.0
    composite = (
        0.40 * (1.0 - false_share)
        + 0.20 * verified_share
        + 0.15 * diligence
        + 0.25 * provenance
    )
    if len(article_ids) < _MIN_ARTICLES:
        color = "grey"
    elif composite >= _GREEN:
        color = "green"
    elif composite >= _ORANGE:
        color = "orange"
    else:
        color = "red"
    return SourceRating(
        platform_name=platform_name,
        articles=len(article_ids),
        false_content_share=false_share,
        verified_member_share=verified_share,
        editorial_diligence=diligence,
        provenance_discipline=provenance,
        composite=composite,
        color=color,
    )


def _platform_of_room(ledger: Ledger, room_name: str) -> str | None:
    for event in ledger.events(contract="newsroom", kind="room-created"):
        if event["room"] == room_name:
            return event["platform"]
    return None
