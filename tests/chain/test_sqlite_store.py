"""SQLiteStore-specific tests: image media, schema migrations, SQL views.

The backend-agnostic recovery contract (full replay, snapshot+tail,
torn-tail reconciliation, acked tracking) runs against SQLiteStore via
the parametrized suites in ``test_store.py``/``test_store_recovery.py``.
This file covers what is unique to the relational backend: CRC-framed
serialized sqlite3 images as the snapshot media, generation fallback and
full-replay degradation when images are damaged, forward schema
migration (a v1 image is upgraded in place on load, a future-versioned
one is refused), reconciliation of the tx tables against the recovered
chain, and the SQL query surface answering identically to the explorer
scan.
"""

from __future__ import annotations

import random
import sqlite3
import zlib

import pytest

from repro.chain.explorer import find_transactions
from repro.chain.store import SQLiteStore
from repro.chain.store.codec import encode_obj, receipt_to_obj
from repro.chain.store.sqlite import _HEADER, _MAGIC, SCHEMA_VERSION, image_name
from repro.chain.transaction import TxReceipt
from repro.crypto import KeyPair
from repro.obs import MetricsRegistry
from repro.simnet.disk import SimDisk

from tests.chain.test_store import _build_chain, _populate


@pytest.fixture
def keypair():
    return KeyPair.generate(random.Random(0))


def _image_heights(store):
    return [c.height for c in store._snapshot_candidates()]


# -- snapshot media ----------------------------------------------------------


def test_snapshot_writes_pruned_image_generations(keypair):
    _, commits = _build_chain(keypair, 20)
    store = SQLiteStore(disk=SimDisk("n0"), snapshot_interval=4, keep_snapshots=2)
    _populate(store, commits, snapshots=True)
    assert _image_heights(store) == [16, 20]
    assert sorted(store.disk.names_with_role("snapshot")) == [
        c.name for c in store._snapshot_candidates()
    ]


def test_corrupt_image_falls_back_to_previous_generation(keypair):
    ledger, commits = _build_chain(keypair, 12)
    disk = SimDisk("n0", rng=random.Random(9))
    store = SQLiteStore(disk=disk, snapshot_interval=4, keep_snapshots=2)
    state = _populate(store, commits, snapshots=True)
    assert _image_heights(store) == [8, 12]
    assert disk.corrupt(name=image_name(12)) is not None
    recovered = store.recover()
    report = recovered.report
    assert report.mode == "snapshot+tail"
    assert report.snapshot_height == 8
    assert [d.kind for d in report.degradations] == ["snapshot-corrupt"]
    assert recovered.ledger.height == 12
    assert recovered.state.state_digest() == state.state_digest()
    # The bad image was discarded; the older generation survives.
    assert _image_heights(store) == [8]
    # The adopted live database was reconciled up to the log tip.
    assert store.sql_stats()["indexed_height"] == 12
    assert store.sql_stats()["txs"] == 24


def test_all_images_corrupt_falls_back_to_full_replay(keypair):
    ledger, commits = _build_chain(keypair, 9)
    disk = SimDisk("n0", rng=random.Random(11))
    store = SQLiteStore(disk=disk, snapshot_interval=4, keep_snapshots=2)
    state = _populate(store, commits, snapshots=True)
    for candidate in store._snapshot_candidates():
        assert disk.corrupt(offset=100, name=candidate.name) is not None
    recovered = store.recover()
    assert recovered.report.mode == "full-replay"
    assert {d.kind for d in recovered.report.degradations} == {"snapshot-corrupt"}
    assert recovered.ledger.height == 9
    assert recovered.state.state_digest() == state.state_digest()
    # Full replay rebuilt the relational tables from scratch.
    assert store.sql_stats()["indexed_height"] == 9
    assert store.sql_stats()["txs"] == 18


def test_image_with_mismatched_height_is_rejected(keypair):
    """An image whose internal snapshot row disagrees with its file name
    cannot be trusted (a renamed or cross-wired artifact)."""
    _, commits = _build_chain(keypair, 8)
    disk = SimDisk("n0")
    store = SQLiteStore(disk=disk, snapshot_interval=4, keep_snapshots=1)
    _populate(store, commits, snapshots=True)
    [candidate] = store._snapshot_candidates()
    data = disk.read(candidate.name)
    lying = image_name(6)
    disk.set_role(lying, "snapshot")
    disk.append(lying, data)
    disk.fsync(lying)
    disk.delete(candidate.name)
    recovered = store.recover()
    assert recovered.report.mode == "full-replay"
    assert [d.kind for d in recovered.report.degradations] == ["snapshot-corrupt"]
    assert recovered.ledger.height == 8


def test_tx_tables_reconciled_after_log_truncation(keypair):
    """A torn tail shortens the chain below what the tables indexed: the
    adopted database must not keep rows for blocks that no longer exist."""
    _, commits = _build_chain(keypair, 10)
    disk = SimDisk("n0", rng=random.Random(7))
    store = SQLiteStore(disk=disk, snapshot_interval=4, keep_snapshots=2)
    _populate(store, commits, snapshots=True)
    disk.arm_torn_write()
    disk.on_crash()
    recovered = store.recover()
    tip = recovered.report.recovered_height
    assert tip == 9  # last record torn off
    stats = store.sql_stats()
    assert stats["indexed_height"] == tip
    conn = store.connection()
    assert conn.execute(
        "SELECT COUNT(*) FROM txs WHERE height > ?", (tip,)
    ).fetchone()[0] == 0
    assert conn.execute("SELECT COUNT(*) FROM txs").fetchone()[0] == 2 * tip


# -- schema versioning -------------------------------------------------------

_SCHEMA_V1 = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE addresses (id INTEGER PRIMARY KEY, address TEXT UNIQUE NOT NULL);
CREATE TABLE contracts (id INTEGER PRIMARY KEY, name TEXT UNIQUE NOT NULL);
CREATE TABLE txs (
    tx_id TEXT PRIMARY KEY,
    height INTEGER NOT NULL,
    tx_index INTEGER NOT NULL,
    sender_id INTEGER NOT NULL REFERENCES addresses(id),
    contract_id INTEGER NOT NULL REFERENCES contracts(id),
    method TEXT NOT NULL,
    valid INTEGER NOT NULL
);
CREATE UNIQUE INDEX idx_txs_chain ON txs(height, tx_index);
CREATE TABLE snapshot (
    height INTEGER PRIMARY KEY,
    block_hash TEXT NOT NULL,
    state BLOB NOT NULL,
    receipts BLOB NOT NULL
);
"""


def _receipt_objs(commits):
    receipts: dict[str, TxReceipt] = {}
    for block, validity, errors in commits:
        for index, tx in enumerate(block.transactions):
            verdict = validity[index]
            receipt = TxReceipt(
                tx_id=tx.tx_id, block_height=block.height, success=verdict,
                return_value=tx.return_value if verdict else None,
                events=tx.events if verdict else (), error=errors[index],
            )
            existing = receipts.get(tx.tx_id)
            if existing is None or verdict or not existing.success:
                receipts[tx.tx_id] = receipt
    return [receipt_to_obj(receipts[tx_id]) for tx_id in sorted(receipts)]


def _write_image(disk, height, conn):
    payload = bytes(conn.serialize())
    name = image_name(height)
    disk.set_role(name, "snapshot")
    disk.append(name, _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload)
    disk.fsync(name)
    return name


def _build_v1_image(disk, ledger, commits, state):
    """Hand-write a schema-v1 image at the chain head, as a pre-upgrade
    deployment would have left it on disk."""
    height = ledger.height
    conn = sqlite3.connect(":memory:")
    conn.executescript(_SCHEMA_V1)
    conn.execute("INSERT INTO meta VALUES ('schema_version', '1')")
    conn.execute("INSERT INTO meta VALUES ('indexed_height', ?)", (str(height),))
    interned_addr: dict[str, int] = {}
    interned_contract: dict[str, int] = {}
    for block, validity, _ in commits:
        for tx_index, tx in enumerate(block.transactions):
            if tx.sender not in interned_addr:
                interned_addr[tx.sender] = conn.execute(
                    "INSERT INTO addresses (address) VALUES (?)", (tx.sender,)
                ).lastrowid
            if tx.contract not in interned_contract:
                interned_contract[tx.contract] = conn.execute(
                    "INSERT INTO contracts (name) VALUES (?)", (tx.contract,)
                ).lastrowid
            conn.execute(
                "INSERT INTO txs VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    tx.tx_id, block.height, tx_index,
                    interned_addr[tx.sender], interned_contract[tx.contract],
                    tx.method, 1 if validity[tx_index] else 0,
                ),
            )
    conn.execute(
        "INSERT INTO snapshot VALUES (?, ?, ?, ?)",
        (
            height, ledger.head.block_hash,
            encode_obj(state.dump()), encode_obj(_receipt_objs(commits)),
        ),
    )
    conn.commit()
    name = _write_image(disk, height, conn)
    conn.close()
    return name


def test_v1_image_is_migrated_forward_on_load(keypair):
    ledger, commits = _build_chain(keypair, 6, txs_per_block=3)
    disk = SimDisk("n0")
    store = SQLiteStore(disk=disk, snapshot_interval=1000)  # no v2 images
    registry = MetricsRegistry()
    store.attach(registry, "n0")
    state = _populate(store, commits)
    _build_v1_image(disk, ledger, commits, state)

    recovered = store.recover()
    report = recovered.report
    assert report.mode == "snapshot+tail"
    assert report.snapshot_height == 6
    assert report.degradations == []  # migration is an upgrade, not a loss
    assert recovered.ledger.height == 6
    assert recovered.state.state_digest() == state.state_digest()
    assert {r.tx_id: r.success for r in recovered.receipts.values()} == {
        tx.tx_id: validity[i]
        for block, validity, _ in commits
        for i, tx in enumerate(block.transactions)
    }
    # The adopted live database now speaks the current schema: the
    # methods table exists, is linked, and serves queries.
    stats = store.sql_stats()
    assert stats["schema_version"] == SCHEMA_VERSION
    assert stats["methods"] == 1
    assert stats["txs"] == 18
    assert store.query_transactions(method="increment", limit=5) == find_transactions(
        recovered.ledger, method="increment", limit=5
    )
    assert registry.total("store.schema_migrations") == 1


def test_future_schema_version_is_refused(keypair):
    """A downgrade scenario: an image written by a *newer* deployment
    must not be half-understood — the ladder treats it as corrupt and
    falls back (here: to full replay)."""
    ledger, commits = _build_chain(keypair, 5)
    disk = SimDisk("n0")
    store = SQLiteStore(disk=disk, snapshot_interval=1000)
    state = _populate(store, commits)
    conn = sqlite3.connect(":memory:")
    conn.executescript(_SCHEMA_V1)
    conn.execute(
        "INSERT INTO meta VALUES ('schema_version', ?)", (str(SCHEMA_VERSION + 1),)
    )
    conn.execute(
        "INSERT INTO snapshot VALUES (?, ?, ?, ?)",
        (5, ledger.head.block_hash, encode_obj(state.dump()), encode_obj([])),
    )
    conn.commit()
    _write_image(disk, 5, conn)
    conn.close()
    recovered = store.recover()
    assert recovered.report.mode == "full-replay"
    assert [d.kind for d in recovered.report.degradations] == ["snapshot-corrupt"]
    assert recovered.ledger.height == 5
    assert recovered.state.state_digest() == state.state_digest()


# -- SQL query surface -------------------------------------------------------


def test_query_transactions_matches_explorer_scan(keypair):
    ledger, commits = _build_chain(keypair, 15, txs_per_block=3)
    store = SQLiteStore(disk=SimDisk("n0"), snapshot_interval=4)
    _populate(store, commits, snapshots=True)
    for kwargs in (
        {},
        {"limit": 7},
        {"contract": "counter"},
        {"method": "increment", "limit": 4},
        {"sender": keypair.address},
        {"contract": "counter", "method": "increment", "sender": keypair.address},
        {"contract": "absent"},
        {"sender": "nobody"},
        {"limit": 0},
    ):
        assert store.query_transactions(**kwargs) == find_transactions(
            ledger, **kwargs
        ), kwargs


def test_query_surface_survives_crash_recovery(keypair):
    ledger, commits = _build_chain(keypair, 12, txs_per_block=2)
    disk = SimDisk("n0", rng=random.Random(3))
    store = SQLiteStore(disk=disk, snapshot_interval=4)
    _populate(store, commits, snapshots=True)
    before = store.query_transactions(limit=50)
    disk.on_crash()  # loses nothing durable; the live conn is rebuilt
    recovered = store.recover()
    assert recovered.ledger.height == 12
    assert store.query_transactions(limit=50) == before
