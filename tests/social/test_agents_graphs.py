"""Agent populations and follow-graph generators."""

import random

import networkx as nx
import pytest

from repro.social import (
    AgentKind,
    bind_agents,
    make_population,
    polarized_follow_graph,
    scale_free_follow_graph,
    small_world_follow_graph,
)


def test_population_kind_fractions():
    agents = make_population(200, random.Random(0), bot_fraction=0.1,
                             cyborg_fraction=0.05, journalist_fraction=0.05)
    kinds = [a.kind for a in agents]
    assert kinds.count(AgentKind.BOT) == 20
    assert kinds.count(AgentKind.CYBORG) == 10
    assert kinds.count(AgentKind.JOURNALIST) == 10
    assert kinds.count(AgentKind.USER) == 160


def test_population_unique_ids():
    agents = make_population(100, random.Random(1))
    assert len({a.agent_id for a in agents}) == 100


def test_fractions_must_be_sane():
    with pytest.raises(ValueError):
        make_population(10, random.Random(0), bot_fraction=0.6, cyborg_fraction=0.5)


def test_bots_mostly_malicious_users_mostly_honest():
    agents = make_population(2000, random.Random(2), bot_fraction=0.2)
    bots = [a for a in agents if a.kind is AgentKind.BOT]
    users = [a for a in agents if a.kind is AgentKind.USER]
    bot_malicious = sum(a.malicious for a in bots) / len(bots)
    user_malicious = sum(a.malicious for a in users) / len(users)
    assert bot_malicious > 0.8
    assert user_malicious < 0.15


def test_population_deterministic():
    a = make_population(50, random.Random(3))
    b = make_population(50, random.Random(3))
    assert [(x.agent_id, x.kind, x.malicious) for x in a] == [
        (x.agent_id, x.kind, x.malicious) for x in b
    ]


def test_scale_free_graph_shape():
    graph = scale_free_follow_graph(300, seed=0)
    assert graph.is_directed()
    assert graph.number_of_nodes() == 300
    degrees = sorted((d for _, d in graph.out_degree()), reverse=True)
    # Scale-free: hubs dominate.
    assert degrees[0] > 5 * (sum(degrees) / len(degrees))


def test_small_world_graph_shape():
    graph = small_world_follow_graph(100, seed=0)
    assert graph.number_of_nodes() == 100
    assert graph.number_of_edges() > 0


def test_polarized_graph_communities():
    graph = polarized_follow_graph(200, seed=0)
    communities = nx.get_node_attributes(graph, "community")
    assert set(communities.values()) == {0, 1}
    within = across = 0
    for u, v in graph.edges():
        if communities[u] == communities[v]:
            within += 1
        else:
            across += 1
    assert within > 5 * across  # echo chambers


def test_bind_agents_attaches_and_copies_community():
    graph = polarized_follow_graph(50, seed=1)
    agents = make_population(50, random.Random(1))
    mapping = bind_agents(graph, agents)
    assert len(mapping) == 50
    for node, agent in mapping.items():
        assert graph.nodes[node]["agent"] is agent
        assert agent.community == graph.nodes[node]["community"]


def test_bind_agents_length_mismatch():
    graph = scale_free_follow_graph(10, seed=0)
    with pytest.raises(ValueError):
        bind_agents(graph, make_population(9, random.Random(0)))


def test_graphs_deterministic():
    a = scale_free_follow_graph(100, seed=5)
    b = scale_free_follow_graph(100, seed=5)
    assert sorted(a.edges()) == sorted(b.edges())
