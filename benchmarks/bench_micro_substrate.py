"""Micro-benchmarks of the substrate hot paths.

Not a paper experiment — the engineering baseline: what one signature,
one endorsement round-trip, one LocalChain transaction, and one
provenance query cost.  pytest-benchmark runs these with real repetition
statistics (unlike the one-shot experiment benches).
"""

from __future__ import annotations

import random

from repro.chain import LocalChain
from repro.core import ProvenanceIndex
from repro.corpus import CorpusGenerator
from repro.crypto import KeyPair
from tests.conftest import CounterContract


def test_micro_ed25519_sign(benchmark):
    keypair = KeyPair.generate(random.Random(1))
    benchmark(keypair.sign, b"the quick brown fox")


def test_micro_ed25519_verify(benchmark):
    keypair = KeyPair.generate(random.Random(2))
    message = b"the quick brown fox"
    signature = keypair.sign(message)

    def verify_uncached():
        # Vary the message so the verification cache cannot short-circuit.
        verify_uncached.counter += 1
        payload = message + str(verify_uncached.counter).encode()
        return keypair.verify(payload, keypair.sign(payload))

    verify_uncached.counter = 0
    benchmark(verify_uncached)


def test_micro_localchain_invoke(benchmark):
    chain = LocalChain(seed=3)
    chain.install_contract(CounterContract())
    account = chain.new_account()

    def one_tx():
        chain.invoke(account, "counter", "increment")

    benchmark(one_tx)
    assert chain.ledger.height > 0


def test_micro_provenance_query(benchmark):
    gen = CorpusGenerator(seed=4)
    index = ProvenanceIndex(method="exact")
    for _ in range(200):
        article = gen.factual()
        index.add(article.article_id, article.text)
    query = gen.relay_derivation(gen.factual(), "q", 0.0)
    benchmark(index.discover_parents, query.text)


def test_micro_corpus_article(benchmark):
    gen = CorpusGenerator(seed=5)
    benchmark(gen.factual)
