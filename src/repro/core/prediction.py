"""Fake-news prediction before propagation (§VII future work).

Two predictors the paper calls for:

- :class:`FakeRiskPredictor` — score an article *at publication time*
  (zero shares) from its content plus the author's on-ledger history;
  the ledger is what makes the history feature possible at all.
- :class:`ViralityPredictor` — from the first ``k`` rounds of cascade
  telemetry, predict whether a lineage will go viral, so interventions
  can be triggered "before it has been propagated and disputed".
"""

from __future__ import annotations

import numpy as np

import networkx as nx

from repro.corpus.articles import Article
from repro.errors import MLError
from repro.ml.features import StylometricExtractor
from repro.ml.logistic import LogisticRegression
from repro.ml.vectorize import StandardScaler
from repro.social.agents import AgentKind, SocialAgent
from repro.social.cascade import CascadeResult

__all__ = ["author_history_features", "FakeRiskPredictor", "early_cascade_features", "ViralityPredictor"]


def author_history_features(graph: nx.DiGraph, author: str) -> list[float]:
    """Ledger-derived author features: volume, mean modification degree,
    untraceable share.  A brand-new account (no history) reports the
    priors (0 volume, 0.5 / 0.5) — itself a risk signal."""
    degrees = []
    untraceable = 0
    for _, attrs in graph.nodes(data=True):
        if attrs.get("author") != author or attrs.get("is_fact_root"):
            continue
        degrees.append(attrs.get("modification_degree", 0.0))
        if graph.out_degree(_) == 0:
            untraceable += 1
    if not degrees:
        return [0.0, 0.5, 0.5]
    return [
        float(len(degrees)),
        float(sum(degrees) / len(degrees)),
        float(untraceable / len(degrees)),
    ]


class FakeRiskPredictor:
    """Pre-propagation risk: stylometric content + author ledger history."""

    def __init__(self, learning_rate: float = 0.3, n_iterations: int = 400):
        self._stylometric = StylometricExtractor()
        self._scaler = StandardScaler()
        self._model = LogisticRegression(learning_rate=learning_rate, n_iterations=n_iterations)
        self._fitted = False

    def _matrix(self, articles: list[Article], graph: nx.DiGraph) -> np.ndarray:
        content = self._stylometric.transform([a.text for a in articles])
        history = np.array(
            [author_history_features(graph, a.author) for a in articles], dtype=np.float64
        )
        return np.hstack([content, history])

    def fit(self, articles: list[Article], graph: nx.DiGraph) -> "FakeRiskPredictor":
        if not articles:
            raise MLError("need training articles")
        X = self._scaler.fit_transform(self._matrix(articles, graph))
        y = np.array([int(a.label_fake) for a in articles])
        self._model.fit(X, y)
        self._fitted = True
        return self

    def risk(self, articles: list[Article], graph: nx.DiGraph) -> np.ndarray:
        """P(fake) per article, before any share has happened."""
        if not self._fitted:
            raise MLError("predictor must be fitted first")
        X = self._scaler.transform(self._matrix(articles, graph))
        return self._model.score_fake(X)


def early_cascade_features(
    result: CascadeResult,
    root_id: str,
    agents_by_id: dict[str, SocialAgent],
    upto_round: int,
) -> list[float]:
    """Telemetry from the first rounds of one lineage's cascade.

    Features: shares so far, unique sharers, bot share fraction,
    mutation fraction, exposure so far — the signals Grinberg et al.
    [36] found predictive (bot-driven early amplification).
    """
    events = [
        e
        for e in result.events
        if e.round_index < upto_round and result.root_of.get(e.article_id) == root_id
    ]
    if not events:
        reach_curve = result.reach_curve(root_id)
        early_reach = reach_curve[min(upto_round, len(reach_curve) - 1)] if reach_curve else 0
        return [0.0, 0.0, 0.0, 0.0, float(early_reach)]
    sharers = {e.agent_id for e in events}
    bots = sum(
        1
        for e in events
        if (agent := agents_by_id.get(e.agent_id)) is not None
        and agent.kind in (AgentKind.BOT, AgentKind.CYBORG)
    )
    mutations = sum(1 for e in events if e.op not in ("relay",))
    reach_curve = result.reach_curve(root_id)
    early_reach = reach_curve[min(upto_round - 1, len(reach_curve) - 1)] if reach_curve else 0
    return [
        float(len(events)),
        float(len(sharers)),
        bots / len(events),
        mutations / len(events),
        float(early_reach),
    ]


class ViralityPredictor:
    """Predicts viral outcomes from round-k cascade telemetry."""

    def __init__(self, viral_threshold: int = 100):
        self.viral_threshold = viral_threshold
        self._scaler = StandardScaler()
        self._model = LogisticRegression(learning_rate=0.3, n_iterations=400)
        self._fitted = False

    def fit(self, feature_rows: list[list[float]], final_reaches: list[int]) -> "ViralityPredictor":
        if len(feature_rows) != len(final_reaches) or not feature_rows:
            raise MLError("features/labels mismatch or empty")
        X = self._scaler.fit_transform(np.array(feature_rows, dtype=np.float64))
        y = np.array([int(r >= self.viral_threshold) for r in final_reaches])
        if len(set(y.tolist())) < 2:
            raise MLError("training set needs both viral and non-viral examples")
        self._model.fit(X, y)
        self._fitted = True
        return self

    def predict_viral(self, feature_rows: list[list[float]]) -> np.ndarray:
        """P(goes viral) per lineage."""
        if not self._fitted:
            raise MLError("predictor must be fitted first")
        X = self._scaler.transform(np.array(feature_rows, dtype=np.float64))
        return self._model.score_fake(X)
