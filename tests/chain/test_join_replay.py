"""Late peer join (observer sync) and ledger state replay."""

import pytest

from repro.chain import BlockchainNetwork, LocalChain
from repro.simnet import FixedLatency


def _network(consensus):
    from tests.conftest import CounterContract

    network = BlockchainNetwork(n_peers=4, consensus=consensus, block_interval=0.3,
                                latency=FixedLatency(0.01), seed=61)
    network.install_contract(CounterContract)
    return network


@pytest.mark.parametrize("consensus", ["poa", "pbft"])
def test_late_joiner_catches_up_and_follows(consensus):
    network = _network(consensus)
    client = network.client()
    for _ in range(3):
        client.invoke("counter", "increment", {"amount": 1})
        network.run_for(2)  # let every peer apply before the next endorsement
    network.run_for(3)
    heights_before = max(p.ledger.height for p in network.peers)

    observer = network.join_peer("observer-0")
    assert observer.ledger.height == heights_before  # snapshot sync
    assert observer.state.get("count") == 3
    assert observer.state.state_digest() == network.peers[0].state.state_digest()

    # The observer must follow new blocks live.
    client.invoke("counter", "increment", {"amount": 10})
    network.run_for(5)
    assert observer.state.get("count") == 13
    network.assert_convergence()


def test_observer_never_proposes():
    network = _network("poa")
    observer = network.join_peer("observer-0")
    client = network.client()
    for _ in range(4):
        client.invoke("counter", "increment", {"amount": 1})
    network.run_for(5)
    proposers = {
        network.peers[0].ledger.block(h).proposer
        for h in range(1, network.peers[0].ledger.height + 1)
    }
    assert "observer-0" not in proposers


def test_ledger_replay_matches_peer_state():
    network = _network("poa")
    client = network.client()
    for amount in (1, 2, 3):
        client.invoke("counter", "increment", {"amount": amount})
        network.run_for(2)  # avoid endorsing against stale peers
    network.run_for(3)
    peer = max(network.peers, key=lambda p: p.ledger.height)
    replayed = peer.ledger.replay_state()
    assert replayed.state_digest() == peer.state.state_digest()
    assert replayed.get("count") == 6


def test_localchain_replay_roundtrip(counter_contract_cls):
    chain = LocalChain(seed=8)
    chain.install_contract(counter_contract_cls())
    account = chain.new_account()
    for _ in range(5):
        chain.invoke(account, "counter", "increment")
    replayed = chain.ledger.replay_state()
    assert replayed.state_digest() == chain.state.state_digest()
