"""Agent-based social-media propagation simulator.

Substitutes for real platform traces: users/bots/cyborgs/journalists on
generated follow graphs, independent-cascade propagation with
mutation-on-share, and scenario harnesses (fake-vs-factual races).
"""

from repro.social.agents import AgentKind, SocialAgent, make_botnet, make_population
from repro.social.cascade import CascadeResult, CascadeRunner, ShareEvent, emotional_appeal
from repro.social.fastcascade import (
    CascadeStats,
    CompiledCascadeGraph,
    FastCascadeRunner,
    KeyedDraws,
)
from repro.social.graphs import (
    bind_agents,
    interconnect,
    polarized_follow_graph,
    scale_free_follow_graph,
    small_world_follow_graph,
)
from repro.social.simulation import (
    RaceOutcome,
    RaceSummary,
    build_social_world,
    run_race,
    run_races,
)

__all__ = [
    "AgentKind",
    "SocialAgent",
    "make_botnet",
    "make_population",
    "CascadeResult",
    "CascadeRunner",
    "CascadeStats",
    "CompiledCascadeGraph",
    "FastCascadeRunner",
    "KeyedDraws",
    "ShareEvent",
    "emotional_appeal",
    "bind_agents",
    "interconnect",
    "polarized_follow_graph",
    "scale_free_follow_graph",
    "small_world_follow_graph",
    "RaceOutcome",
    "RaceSummary",
    "build_social_world",
    "run_race",
    "run_races",
]
