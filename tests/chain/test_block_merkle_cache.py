"""Regression tests: Block caches its MerkleTree.

Pre-fix, ``verify_structure`` and every ``prove_inclusion`` call rebuilt
the full Merkle tree — O(n) hashing per proof, O(p·n) for an explorer
serving p proofs.  A block is a frozen dataclass over frozen
transactions, so one tree can serve every verification and proof.  The
counting monkeypatch below fails on pre-fix code (it counted one
construction per call, not one per block).
"""

import random

import pytest

import repro.chain.block as block_module
from repro.chain.block import Block
from repro.chain.transaction import Transaction
from repro.crypto import KeyPair
from repro.crypto.merkle import MerkleTree


@pytest.fixture
def txs():
    keypair = KeyPair.generate(random.Random(5))
    return [
        Transaction.create(keypair, "counter", "increment", {"n": i}, nonce=i)
        for i in range(8)
    ]


@pytest.fixture
def counting_tree(monkeypatch):
    built = []

    class CountingTree(MerkleTree):
        def __init__(self, leaves):
            built.append(1)
            super().__init__(leaves)

    monkeypatch.setattr(block_module, "MerkleTree", CountingTree)
    return built


def test_build_constructs_exactly_one_tree(txs, counting_tree):
    block = Block.build(1, "aa" * 32, 1.0, "p0", txs)
    assert sum(counting_tree) == 1
    # Structure check and every proof reuse the cached tree.
    block.verify_structure()
    for tx in txs:
        block.prove_inclusion(tx.tx_id)
    assert sum(counting_tree) == 1


def test_deserialized_block_builds_tree_lazily_once(txs, counting_tree):
    built_block = Block.build(1, "aa" * 32, 1.0, "p0", txs)
    # A block arriving off the wire is constructed directly (no build()),
    # so it has no seeded cache; the first use builds the tree, later
    # uses reuse it.
    wire = Block(
        height=built_block.height, prev_hash=built_block.prev_hash,
        merkle_root=built_block.merkle_root, timestamp=built_block.timestamp,
        proposer=built_block.proposer, transactions=built_block.transactions,
        block_hash=built_block.block_hash,
    )
    before = sum(counting_tree)
    wire.verify_structure()
    assert sum(counting_tree) == before + 1
    wire.verify_structure()
    wire.prove_inclusion(txs[0].tx_id)
    assert sum(counting_tree) == before + 1


def test_cached_proofs_still_verify(txs):
    block = Block.build(3, "bb" * 32, 2.0, "p1", txs)
    for index, tx in enumerate(txs):
        proof = block.prove_inclusion(tx.tx_id)
        assert proof.verify(block.merkle_root)
        assert proof.index == index
        assert proof.leaf == tx.tx_id
