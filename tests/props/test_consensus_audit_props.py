"""Property-based tests: the auditor's safety invariants are seed-independent.

Hypothesis drives the scenario space — network seed, which replica
crashes, when it crashes, traffic shape — while the harness holds the
adversary at the protocol's design point (f = 1 for n = 4: one crashed
replica *plus* a byzantine, equivocating primary).  Whatever the seed,
the agreement and certificate invariants must hold on every honest
peer: safety never degrades to "usually".
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain import BlockchainNetwork, InvariantAuditor
from repro.simnet import FixedLatency, UniformLatency


@given(
    seed=st.integers(min_value=0, max_value=10**6),
    crash_index=st.integers(min_value=1, max_value=3),
    crash_after=st.floats(min_value=0.0, max_value=8.0),
    n_txs=st.integers(min_value=2, max_value=6),
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_agreement_and_certificates_hold_with_f_crash_and_byzantine_primary(
    seed, crash_index, crash_after, n_txs
):
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=UniformLatency(0.01, 0.06), seed=seed,
        byzantine_peers={"peer-0"}, view_timeout=3.0,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)  # strict: raises on any violation
    victim = network.peers[crash_index]
    client = network.client()
    for index in range(n_txs):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        entry = network.peers[1 + (index % 3)]
        if entry.submit(tx):
            auditor.track_tx(tx.tx_id)
        network.run_for(2.0)
        if not victim.crashed and network.sim.now >= crash_after:
            victim.crashed = True
    network.run_for(25.0)
    network.stop()
    # Strict incremental checks already ran on every commit; re-run the
    # full forensic pass over the final ledgers and certificates.
    auditor.check_agreement()
    auditor.check_certificates()
    auditor.check_convergence()
    assert auditor.violations == []
    # Certificates that exist are honest: 2f+1 distinct validators each.
    for peer in network.peers:
        if peer.byzantine:
            continue
        for _, certificate in peer.engine.commit_certificates.values():
            assert len(set(certificate)) >= peer.engine.quorum
            assert set(certificate) <= set(peer.engine.validators)


@given(seed=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_durability_holds_under_crash(seed):
    """With gossip on and faults within f, no admitted tx ever vanishes."""
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=FixedLatency(0.02), seed=seed, view_timeout=3.0,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)
    victim = network.peers[seed % 4]
    client = network.client()
    for index in range(4):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        network.run_for(1.5)
        if index == 1:
            victim.crashed = True
        if index == 3:
            victim.crashed = False
    network.run_for(20.0)
    network.stop()
    assert not auditor.final_check()
    assert len(auditor.tracked_txs) == 4
