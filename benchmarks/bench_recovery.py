"""Crash-recovery benchmark: deep catch-up latency and throughput.

A 4-validator PBFT network loses one replica for 20+ blocks — far
beyond the engine's ``HEIGHT_WINDOW`` round buffer — then brings it
back under lossy links (25% message drop during the recovery phase), in
both comeback modes:

- **pause**   — crash-pause: in-memory state intact, only behind;
- **restart** — crash-restart: mempool/rounds/timers wiped, world state
  replayed from the durable ledger, then the same catch-up.

Reported per scenario: blocks missed, catch-up latency (from the fault
injector's log to the head that existed at comeback), sync throughput
(blocks/s while lagging), and the retry machinery's counters (timeouts,
retries, provider failovers) proving the loss was real and survived.
The victim's fetch batch is shrunk so the gap takes many round-trips —
that is what gives the drop rate something to kill.

Besides the usual ``emit`` table, the run writes a JSON perf record to
``benchmarks/latest_recovery.json`` for machine consumption.
"""

from __future__ import annotations

import json
import pathlib
import statistics

from benchmarks.conftest import emit
from repro.chain import BlockchainNetwork, InvariantAuditor
from repro.simnet import FailureSchedule, UniformLatency

JSON_PATH = pathlib.Path(__file__).parent / "latest_recovery.json"

SEEDS = range(3)
N_TXS = 26
RECOVERY_DROP = 0.25


def _run(mode: str, seed: int) -> dict:
    from tests.conftest import CounterContract

    network = BlockchainNetwork(
        n_peers=4, consensus="pbft", block_interval=0.5,
        latency=UniformLatency(0.01, 0.05), seed=seed,
        view_timeout=4.0, drop_probability=0.0,
    )
    network.install_contract(CounterContract)
    auditor = InvariantAuditor(network)
    schedule = FailureSchedule(network.sim, network.net)
    victim = network.peers[3]
    victim.sync.MAX_BATCH = 4  # many round-trips: give the drop rate targets
    schedule.crash_at(1.0, victim.node_id)
    client = network.client()
    for _ in range(N_TXS):
        tx = network.endorse_transaction(client, "counter", "increment", {"amount": 1})
        network.submit(tx)
        network.run_for(0.8)
    gap = max(p.ledger.height for p in network.peers) - victim.ledger.height
    network.net.drop_probability = RECOVERY_DROP
    comeback = network.sim.now + 0.5
    if mode == "restart":
        schedule.restart_at(comeback, victim.node_id)
    else:
        schedule.recover_at(comeback, victim.node_id)
    network.run_for(90.0)
    network.stop()
    auditor.final_check(failures=schedule.log, sync_window=90.0)

    latencies = [lat for _, lat in auditor.catchup_latencies(schedule.log)]
    metrics = victim.sync.metrics
    synced_blocks = sum(blocks for blocks, _ in metrics.sync_durations)
    synced_time = sum(seconds for _, seconds in metrics.sync_durations)
    return {
        "mode": mode,
        "seed": seed,
        "blocks_missed": gap,
        "drop_probability": RECOVERY_DROP,
        "catchup_latency_s": latencies[0] if latencies else None,
        "sync_blocks_per_s": (synced_blocks / synced_time) if synced_time else None,
        "blocks_synced": metrics.blocks_synced,
        "requests": metrics.requests_sent,
        "timeouts": metrics.timeouts,
        "retries": metrics.retries,
        "provider_failovers": metrics.provider_failovers,
        "restarts": victim.metrics.restarts,
        "final_height": victim.ledger.height,
        "violations": len(auditor.violations),
    }


def _sweep() -> list[dict]:
    return [_run(mode, seed) for mode in ("pause", "restart") for seed in SEEDS]


def test_recovery(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [f"{'mode':>8} {'seed':>4} {'missed':>6} {'latency(s)':>10} "
            f"{'blk/s':>7} {'req':>4} {'t/o':>4} {'retry':>5} {'failover':>8}"]
    for r in results:
        latency = f"{r['catchup_latency_s']:.2f}" if r["catchup_latency_s"] is not None else "-"
        rate = f"{r['sync_blocks_per_s']:.1f}" if r["sync_blocks_per_s"] else "-"
        rows.append(
            f"{r['mode']:>8} {r['seed']:>4} {r['blocks_missed']:>6} {latency:>10} "
            f"{rate:>7} {r['requests']:>4} {r['timeouts']:>4} "
            f"{r['retries']:>5} {r['provider_failovers']:>8}"
        )
    latencies = [r["catchup_latency_s"] for r in results]
    rows.append(
        f"catch-up latency over {len(latencies)} faults: "
        f"p50={statistics.median(latencies):.2f}s max={max(latencies):.2f}s "
        f"at {RECOVERY_DROP:.0%} message drop"
    )
    rows.append("shape: every latency finite (the deep gap always closes), "
                "restart no slower than pause by more than the replay cost, "
                "retries nonzero (the loss was real)")
    emit(benchmark, "Recovery — deep catch-up under message loss", rows)
    JSON_PATH.write_text(json.dumps({"scenarios": results}, indent=2) + "\n",
                         encoding="utf-8")

    for r in results:
        assert r["blocks_missed"] >= 20, r
        assert r["catchup_latency_s"] is not None, f"never caught up: {r}"
        assert r["violations"] == 0, r
        assert r["final_height"] >= r["blocks_missed"]
    # The lossy recovery phase genuinely exercised the retry machinery.
    assert sum(r["timeouts"] + r["retries"] for r in results) > 0
    assert any(r["restarts"] == 1 for r in results if r["mode"] == "restart")
