"""Election-misinformation scenario: the paper's motivating workload.

A fake story (emotional mutation of a certified count report) races a
factual story across a bot-seeded social network.  Every share is
recorded on the blockchain, so after the cascade we can:

- measure the fake's reach advantage without the platform,
- show interventions (flag + promote) flipping the race,
- trace any laundered copy back to the factual root,
- identify the account that introduced the fakery,
- quantify containment and pick in-group correction messengers.

Run:  python examples/election_misinformation.py
"""

import random

from repro import TrustingNewsPlatform
from repro.core import containment_report, community_exposure, select_messengers
from repro.corpus import CorpusGenerator
from repro.social import (
    CascadeRunner,
    bind_agents,
    make_population,
    polarized_follow_graph,
    run_races,
)


def race_study() -> None:
    print("== fake-vs-factual race (mean of 10 trials, 400 agents) ==")
    baseline = run_races(n_trials=10, n_agents=400, seed=2026, intervene=False)
    treated = run_races(n_trials=10, n_agents=400, seed=2026, intervene=True)
    print(f"  without platform: factual {baseline.mean_factual:7.1f}   "
          f"fake {baseline.mean_fake:7.1f}   fake advantage {baseline.fake_advantage:.2f}x")
    print(f"  with platform:    factual {treated.mean_factual:7.1f}   "
          f"fake {treated.mean_fake:7.1f}   fake advantage {treated.fake_advantage:.2f}x")


def on_chain_cascade() -> None:
    print("\n== one cascade, fully recorded on-chain ==")
    platform = TrustingNewsPlatform(seed=99)
    rng = random.Random(99)
    graph = polarized_follow_graph(300, p_within=0.05, seed=99)
    agents = make_population(300, rng, bot_fraction=0.1)
    bind_agents(graph, agents)
    corpus = CorpusGenerator(seed=100)

    certified = corpus.factual(topic="elections")
    platform.seed_fact("count-cert-7", certified.text, "election-board", "elections")

    # The fake enters as a share of nothing-on-chain (untraceable origin).
    troll = next(a for a in agents if a.malicious)
    fake = corpus.insertion_fake(certified, troll.agent_id, 0.0, n_insertions=4)

    runner = CascadeRunner(
        graph, corpus,
        on_share=lambda event, article: platform.ingest_share(event, article, topic="elections"),
    )
    # Root the fake on-chain first so its shares have a recorded parent.
    class _SeedEvent:
        agent_id = troll.agent_id
        parent_article_id = ""
        op = "insert"
    platform.ingest_share(_SeedEvent(), fake, topic="elections")

    hub = max(graph.nodes(), key=lambda n: graph.out_degree(n))
    result = runner.run([(hub, fake)], n_rounds=8)
    print(f"  cascade: {len(result.events)} shares, "
          f"reach {result.reach(fake.article_id)} of {len(agents)} agents")

    # Traceability + accountability: the deepest laundered copy resolves
    # to whoever authored the content it actually carries.  (That may be
    # a *downstream* mutator rather than the original troll: cascades
    # layer distortions, and each distorter answers for their own.)
    if result.events:
        leaf = result.events[-1].article_id
        trace = platform.trace(leaf)
        print(f"  deepest share {leaf}: traceable={trace.traceable} "
              f"(untraceable lineage — no factual root), provenance score "
              f"{trace.provenance_score:.2f}")
        culprit = platform.accountable_author(leaf)
        malicious_addresses = {
            platform.address_of(a.agent_id)
            for a in agents
            if a.malicious and a.agent_id in platform.accounts
        }
        malicious_addresses.add(platform.address_of(troll.agent_id))
        print(f"  accountable author is a malicious mutator on the lineage: "
              f"{culprit in malicious_addresses}")

    # Containment analysis + in-group correction.
    report = containment_report(result, fake.article_id, flag_round=2)
    print(f"  containment if flagged at round 2: reach_at_flag={report.reach_at_flag}, "
          f"final={report.final_reach}, containment={report.containment:.2f}")
    exposure = community_exposure(result, fake.article_id, {a.agent_id: a for a in agents})
    print(f"  exposure by community: {exposure}")
    worst = max(exposure, key=exposure.get) if exposure else 0
    messengers = select_messengers(agents, target_community=worst, k=3)
    print(f"  suggested in-group correction messengers: "
          f"{[(m.agent_id, m.kind.value) for m in messengers]}")

    print("  platform stats:", platform.stats())


def main() -> None:
    race_study()
    on_chain_cascade()


if __name__ == "__main__":
    main()
