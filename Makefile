PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint lint-baseline test chaos bench bench-smoke recovery obs-demo

# Byte-compile (catches syntax errors), then the repo's own AST linter:
# determinism / sim-time / aliasing / pyflakes-subset / metric-hygiene
# rules (catalog: docs/LINTS.md).  Fails on any error-severity finding
# that is neither `# repro: noqa[...]`-suppressed nor baselined.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -m repro.analysis src tests benchmarks examples

# Deliberately re-grandfather the current findings.  Only for tree-wide
# sweeps (e.g. after adding a rule); new code should be fixed, not
# baselined.
lint-baseline:
	$(PYTHON) -m repro.analysis src tests benchmarks examples --update-baseline

# Tier-1: fast default suite (chaos-marked sweeps excluded via addopts).
test: lint
	$(PYTHON) -m pytest -x -q

# Extended seeded chaos/invariant-audit sweeps (slow, opt-in).
chaos:
	$(PYTHON) -m pytest -m chaos

bench:
	$(PYTHON) -m pytest benchmarks -q

# CI-sized pass over the substrate micro-benchmarks plus the pipelined
# PBFT sweep: REPRO_BENCH_SMOKE=1 shrinks the crypto benches and the
# pipeline workload so the hot paths (including depth > 1 consensus) are
# exercised on every push without the statistical assertions (which need
# quiet hardware).
bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/bench_micro_substrate.py \
		benchmarks/bench_pipeline.py -q --benchmark-disable

# Crash-recovery: deep catch-up tests + the recovery benchmark
# (writes benchmarks/latest_recovery.json).
recovery:
	$(PYTHON) -m pytest tests/chain/test_sync_recovery.py benchmarks/bench_recovery.py -q

# Traced end-to-end demo: runs a small PBFT workload with a crash/restart,
# writes benchmarks/latest_trace.jsonl, and prints the per-phase report.
obs-demo:
	$(PYTHON) -m repro.cli report --demo --trace benchmarks/latest_trace.jsonl
