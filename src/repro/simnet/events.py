"""Discrete-event scheduler: the single clock everything runs on.

The blockchain network, the social-media cascades, and the platform all
schedule callbacks on one :class:`Simulator`, so cross-system questions
("does factual news outpace fake news once consensus latency is paid?")
are well-defined races rather than apples-to-oranges comparisons.

Events at equal timestamps fire in scheduling order (a monotone sequence
number breaks ties), which keeps runs fully deterministic.

Hot-path notes: the heap holds plain ``(time, seq, event)`` tuples, so
ordering is C-level tuple comparison instead of dataclass ``__lt__``
dispatch; :class:`Event` is a slotted handle (no per-event ``__dict__``);
and the live-event count is maintained incrementally on schedule /
cancel / pop, so :attr:`Simulator.pending` is O(1) even with a million
queued timers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback handle; fires as ``callback(*args)``.

    Returned by :meth:`Simulator.schedule`; hold onto it only to
    :meth:`cancel`.  Heap ordering lives in the simulator's
    ``(time, seq, event)`` tuples, not on this class.
    """

    __slots__ = ("time", "seq", "callback", "args", "label", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        label: str = "",
        sim: "Simulator | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._live -= 1

    def __repr__(self) -> str:  # debugging aid; never on the hot path
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time!r}, seq={self.seq}, label={self.label!r}{state})"


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._live = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of queued live (non-cancelled) events, in O(1)."""
        return self._live

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        label: str = "",
        args: tuple = (),
    ) -> Event:
        """Schedule ``callback(*args)`` to run *delay* time units from now.

        Passing *args* instead of closing over them avoids allocating a
        lambda per scheduled event — the difference shows up when every
        network message schedules a delivery.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        event = Event(time, next(self._seq), callback, args, label, self)
        heapq.heappush(self._queue, (time, event.seq, event))
        self._live += 1
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        label: str = "",
        args: tuple = (),
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        return self.schedule(time - self._now, callback, label=label, args=args)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue  # cancel() already dropped it from the live count
            self._live -= 1
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the event queue.

        Args:
            until: stop once the next event lies beyond this time (the
                clock is advanced to *until* so follow-up scheduling is
                relative to the horizon, matching wall-clock intuition).
            max_events: safety valve for runaway feedback loops.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                return
            head_time, _, head_event = self._queue[0]
            if head_event.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head_time > until:
                self._now = max(self._now, until)
                return
            self.step()
            processed += 1
        if until is not None:
            self._now = max(self._now, until)
