"""Consensus engines: PBFT, round-robin PoA ordering, sharded execution."""

from repro.chain.consensus.base import ConsensusEngine
from repro.chain.consensus.pbft import PBFTEngine
from repro.chain.consensus.poa import RoundRobinOrderer
from repro.chain.consensus.sharded import ShardedExecutor, ShardSchedule

__all__ = [
    "ConsensusEngine",
    "PBFTEngine",
    "RoundRobinOrderer",
    "ShardedExecutor",
    "ShardSchedule",
]
