"""Corpus JSONL serialization round-trips."""

import pytest

from repro.corpus.io import article_from_dict, article_to_dict, load_corpus, save_corpus
from repro.errors import CorpusError


def test_article_roundtrip(corpus_gen):
    article = corpus_gen.malicious_derivation(corpus_gen.factual(), "troll", 3.0)
    restored = article_from_dict(article_to_dict(article))
    assert restored == article


def test_corpus_roundtrip(tmp_path, corpus_gen):
    corpus = corpus_gen.labeled_corpus(n_factual=30, n_fake=30)
    path = tmp_path / "corpus.jsonl"
    written = save_corpus(corpus, path)
    assert written == 60
    restored = load_corpus(path)
    assert len(restored) == 60
    assert [a.article_id for a in restored] == [a.article_id for a in corpus]
    assert [a.label_fake for a in restored] == [a.label_fake for a in corpus]
    assert restored.by_id[corpus.articles[0].article_id].text == corpus.articles[0].text


def test_load_skips_blank_lines(tmp_path, corpus_gen):
    corpus = corpus_gen.labeled_corpus(n_factual=5, n_fake=5)
    path = tmp_path / "corpus.jsonl"
    save_corpus(corpus, path)
    content = path.read_text()
    path.write_text(content.replace("\n", "\n\n", 3))
    assert len(load_corpus(path)) == 10


def test_load_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('not json\n')
    with pytest.raises(CorpusError, match="invalid JSON"):
        load_corpus(path)


def test_load_rejects_incomplete_record(tmp_path):
    path = tmp_path / "incomplete.jsonl"
    path.write_text('{"article_id": "a"}\n')
    with pytest.raises(CorpusError, match="missing field"):
        load_corpus(path)


def test_missing_field_rejected():
    with pytest.raises(CorpusError, match="missing field"):
        article_from_dict({"article_id": "a", "topic": "politics"})
