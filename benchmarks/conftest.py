"""Shared helpers for the experiment benchmarks.

Each ``bench_eN_*`` module regenerates one experiment from DESIGN.md's
index (the paper has no numeric tables — its figures are architecture
diagrams — so each experiment quantifies one figure or mechanism claim).
Result rows are printed to stdout (run with ``-s`` to see them live) and
attached to ``benchmark.extra_info`` so ``--benchmark-json`` output
carries them; EXPERIMENTS.md records the reference run.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.corpus import CorpusGenerator
from repro.ml import FakeNewsScorer
from repro.obs import append_perf_record

RESULTS_PATH = pathlib.Path(__file__).parent / "latest_results.txt"
OBS_PATH = pathlib.Path(__file__).parent / "latest_obs.json"
_session_started = False


def emit(benchmark, title: str, rows: list[str], metrics: dict | None = None) -> None:
    """Record an experiment's result table.

    Printed to stdout (visible with ``-s``), attached to the benchmark
    JSON via ``extra_info``, appended to ``benchmarks/
    latest_results.txt`` (truncated once per session) so the tables
    survive pytest's output capture, and mirrored as a structured perf
    record into ``benchmarks/latest_obs.json`` — pass *metrics* to attach
    machine-readable numbers beyond the human-readable rows.
    """
    global _session_started
    first = not _session_started
    mode = "w" if first else "a"
    _session_started = True
    lines = [f"== {title} =="] + [f"  {row}" for row in rows] + [""]
    print("\n" + "\n".join(lines))
    with RESULTS_PATH.open(mode, encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    record: dict = {
        "experiment": title,
        "rows": rows,
        "unix_time": time.time(),
    }
    if metrics:
        record["metrics"] = metrics
    append_perf_record(OBS_PATH, record, reset=first)
    if benchmark is not None:
        benchmark.extra_info["experiment"] = title
        benchmark.extra_info["rows"] = rows
        if metrics:
            benchmark.extra_info["obs_metrics"] = metrics


@pytest.fixture(scope="session")
def session_scorer() -> FakeNewsScorer:
    """One trained AI scorer shared by all benchmarks."""
    corpus = CorpusGenerator(seed=9000).labeled_corpus(n_factual=250, n_fake=250)
    texts, labels = corpus.texts_and_labels()
    return FakeNewsScorer(seed=1).fit(texts, labels)
