"""Baseline file: grandfather existing findings, block new ones.

The baseline maps each finding to a *content fingerprint* —
``sha256(rule | path | stripped source line | occurrence index)`` — so
editing unrelated lines above a finding does not invalidate it, while
editing the flagged line itself (presumably to fix it) retires the
entry.  ``--update-baseline`` rewrites the file from the current run;
entries that no longer match anything are dropped then ("expired"), and
:func:`apply_baseline` reports them so CI can flag a stale baseline.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Iterable

from repro.analysis.core import Finding

__all__ = [
    "BASELINE_VERSION",
    "apply_baseline",
    "fingerprint_findings",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1


def _fingerprint(rule: str, path: str, context: str, occurrence: int) -> str:
    payload = f"{rule}|{path}|{context}|{occurrence}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def fingerprint_findings(findings: Iterable[Finding]) -> dict[str, Finding]:
    """Fingerprint -> finding; duplicates on one line get occurrence ids."""
    counts: dict[tuple[str, str, str], int] = {}
    out: dict[str, Finding] = {}
    for finding in findings:
        key = (finding.rule, finding.path, finding.context)
        occurrence = counts.get(key, 0)
        counts[key] = occurrence + 1
        out[_fingerprint(*key, occurrence)] = finding
    return out


def load_baseline(path: str | pathlib.Path) -> dict[str, dict]:
    """Fingerprint -> stored entry.  A missing file is an empty baseline."""
    path = pathlib.Path(path)
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {data.get('version')!r}, "
            f"expected {BASELINE_VERSION}"
        )
    return {entry["fingerprint"]: entry for entry in data.get("findings", [])}


def apply_baseline(findings: list[Finding], baseline: dict[str, dict]) -> list[str]:
    """Mark baselined findings in place; return expired fingerprints.

    A finding whose fingerprint is in the baseline is grandfathered
    (``finding.baselined = True`` — it no longer affects the exit
    code).  Fingerprints in the baseline that match nothing any more
    are returned so callers can warn that the file needs regenerating.
    """
    current = fingerprint_findings(findings)
    for fingerprint, finding in current.items():
        if fingerprint in baseline:
            finding.baselined = True
    return sorted(set(baseline) - set(current))


def write_baseline(path: str | pathlib.Path, findings: list[Finding]) -> int:
    """Persist every current finding as the new baseline; return count."""
    entries = [
        {
            "fingerprint": fingerprint,
            "rule": finding.rule,
            "severity": finding.severity,
            "path": finding.path,
            "context": finding.context,
        }
        for fingerprint, finding in sorted(fingerprint_findings(findings).items(),
                                           key=lambda kv: (kv[1].path, kv[1].line, kv[1].rule))
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
