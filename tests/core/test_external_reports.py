"""External-source referrals into the platform (§VI)."""

import pytest

from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay


@pytest.fixture
def world(platform):
    gen = CorpusGenerator(seed=91)
    fact = gen.factual(topic="climate")
    platform.seed_fact("f-c", fact.text, "climate-panel", "climate")
    platform.register_participant("reader", role="consumer")
    return platform, gen, fact


def test_external_report_lands_on_supply_chain(world):
    platform, gen, fact = world
    referred = relay(fact, "other-outlet", 0.0)
    published = platform.report_external(
        "reader", "ext-1", referred.text, "climate", source="https://other.example/story"
    )
    assert published.fact_roots == ("f-c",)
    assert published.modification_degree == pytest.approx(0.0)
    node = platform.chain.query("supplychain", "get_node", {"article_id": "ext-1"})
    assert node["op"] == "external-report"
    trace = platform.trace("ext-1")
    assert trace.traceable and trace.root == "fact:f-c"


def test_external_report_rankable_and_auditable(world):
    platform, gen, fact = world
    platform.report_external("reader", "ext-1", relay(fact, "o", 0.0).text,
                             "climate", source="https://o.example")
    ranked = platform.rank_article("ext-1")
    assert ranked.score > 0.9
    audit = platform.export_audit("ext-1")
    assert audit["node"]["op"] == "external-report"


def test_external_fake_ranks_low(world):
    platform, gen, fact = world
    platform.report_external("reader", "ext-good", relay(fact, "o", 0.0).text,
                             "climate", source="https://o.example")
    fake = gen.insertion_fake(relay(fact, "o", 0.0), "troll", 1.0, n_insertions=4)
    platform.report_external("reader", "ext-bad", fake.text,
                             "climate", source="https://sus.example")
    good = platform.rank_article("ext-good")
    bad = platform.rank_article("ext-bad")
    assert good.score > bad.score


def test_external_report_becomes_parent_for_later_content(world):
    platform, gen, fact = world
    referred = relay(fact, "o", 0.0)
    platform.report_external("reader", "ext-1", referred.text, "climate",
                             source="https://o.example")
    echoed = relay(referred, "reader2", 1.0)
    platform.register_participant("reader2", role="consumer")
    second = platform.report_external("reader2", "ext-2", echoed.text, "climate",
                                      source="https://echo.example")
    assert "ext-1" in second.parents
