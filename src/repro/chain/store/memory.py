"""The in-memory backend: the seed behaviour, behind the interface.

Nothing is persisted beyond the peer's own ``Ledger`` object (which the
crash model already treats as durable); recovery returns ``None`` so
``Peer.restart`` keeps the seed path — full ``replay_state()`` from
genesis plus receipt rebuild.  This is the baseline the recovery
benchmark compares the durable backend against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.chain.store.base import BlockStore, RecoveredChain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.consensus.base import ConsensusEngine
    from repro.chain.ledger import Ledger
    from repro.chain.state import WorldState
    from repro.chain.transaction import TxReceipt

__all__ = ["MemoryStore"]


class MemoryStore(BlockStore):
    """No media: commits are acknowledged trivially, recovery defers."""

    kind = "memory"

    def on_commit(
        self,
        block: Any,
        validity: list[bool],
        proof: Any = None,
        errors: list[str | None] | None = None,
    ) -> bool:
        return True

    def maybe_snapshot(
        self, ledger: "Ledger", state: "WorldState", receipts: dict[str, "TxReceipt"]
    ) -> bool:
        return False

    def recover(self, engine: "ConsensusEngine | None" = None) -> RecoveredChain | None:
        return None
