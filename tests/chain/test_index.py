"""Tests for :mod:`repro.chain.index` and the explorer's two query paths.

Three layers:

1. ``ChainIndex`` unit behaviour — incremental feed contract (contiguous
   heights, validity-vector length), lookups, views, ``reindex`` and the
   ``verify_against`` drift detector.
2. Explorer regressions — the scan fallback does *bounded* work now
   (``find_transactions`` stops reading blocks at ``limit``;
   ``chain_summary`` walks the chain once, not twice), proven with a
   block-read-counting ledger, plus genesis-only coverage for every
   explorer function.
3. Scan-vs-index equivalence — hand-picked filter combinations and a
   hypothesis property over randomized chains assert the two paths are
   answer-identical, which is what lets the index serve reads while the
   scan stays the oracle.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import Block
from repro.chain.explorer import (
    chain_summary,
    describe_block,
    describe_transaction,
    find_transactions,
)
from repro.chain.index import ChainIndex, Interner
from repro.chain.ledger import Ledger
from repro.chain.transaction import Transaction
from repro.crypto import KeyPair
from repro.errors import InvalidBlockError


@pytest.fixture(scope="module")
def keypairs():
    rng = random.Random(42)
    return [KeyPair.generate(rng) for _ in range(3)]


_CONTRACTS = (("articles", "publish"), ("articles", "endorse"), ("votes", "cast"))


def _tx(keypair, nonce, contract, method):
    tx = Transaction.create(keypair, contract, method, {"n": nonce}, nonce=nonce)
    return tx.with_execution(
        read_set={}, write_set={f"{contract}/{nonce % 5}": nonce},
        events=({"kind": f"{method}d", "n": nonce},), return_value=nonce,
        endorsements=(),
    )


def _build(keypairs, n_blocks, txs_per_block=3, seed=0):
    """A chain mixing senders, contracts, methods and invalid txs."""
    rng = random.Random(seed)
    ledger = Ledger()
    nonce = 0
    for height in range(1, n_blocks + 1):
        txs = []
        for _ in range(txs_per_block):
            contract, method = rng.choice(_CONTRACTS)
            txs.append(_tx(rng.choice(keypairs), nonce, contract, method))
            nonce += 1
        block = Block.build(height, ledger.head.block_hash, float(height), "peer-0", txs)
        validity = [rng.random() > 0.2 for _ in txs]
        ledger.append(block, validity)
    return ledger


def _indexed(ledger):
    index = ChainIndex()
    index.reindex(ledger)
    return index


class CountingLedger(Ledger):
    """Ledger that counts ``block()`` reads — the unit of scan work."""

    def __init__(self):
        super().__init__()
        self.block_reads = 0

    def block(self, height):
        self.block_reads += 1
        return super().block(height)


# -- Interner / feed contract ------------------------------------------------


def test_interner_round_trip():
    interner = Interner()
    assert interner.intern("a") == 0
    assert interner.intern("b") == 1
    assert interner.intern("a") == 0  # stable on re-intern
    assert interner.value(1) == "b"
    assert interner.lookup("b") == 1
    assert interner.lookup("missing") is None
    assert len(interner) == 2


def test_on_commit_requires_contiguous_heights(keypairs):
    ledger = _build(keypairs, 3)
    index = ChainIndex()
    with pytest.raises(InvalidBlockError, match="cannot apply block 2"):
        index.on_commit(ledger.block(2), ledger.block_validity(2))
    index.on_commit(ledger.block(1), ledger.block_validity(1))
    with pytest.raises(InvalidBlockError, match="cannot apply block 1"):
        index.on_commit(ledger.block(1), ledger.block_validity(1))


def test_on_commit_rejects_validity_length_mismatch(keypairs):
    ledger = _build(keypairs, 1)
    index = ChainIndex()
    with pytest.raises(InvalidBlockError, match="validity vector"):
        index.on_commit(ledger.block(1), [True])


def test_incremental_feed_equals_full_reindex(keypairs):
    ledger = _build(keypairs, 12)
    incremental = ChainIndex()
    for height in range(1, ledger.height + 1):
        incremental.on_commit(ledger.block(height), ledger.block_validity(height))
    rebuilt = _indexed(ledger)
    assert incremental.stats() == rebuilt.stats()
    assert incremental.contract_counts() == rebuilt.contract_counts()
    assert incremental.verify_against(ledger) == []
    assert rebuilt.verify_against(ledger) == []


def test_lookups_match_ledger(keypairs):
    ledger = _build(keypairs, 8)
    index = _indexed(ledger)
    for committed in ledger.transactions(valid_only=False):
        tx = committed.transaction
        assert tx.tx_id in index
        assert index.locator(tx.tx_id) == (committed.block_height, committed.tx_index)
        row = index.get(tx.tx_id)
        assert (row.sender, row.contract, row.method, row.valid) == (
            tx.sender, tx.contract, tx.method, committed.valid
        )
    assert index.get("nope") is None
    assert index.locator("nope") is None
    assert "nope" not in index


def test_verify_against_detects_drift(keypairs):
    ledger = _build(keypairs, 5)
    index = _indexed(ledger)
    assert index.verify_against(ledger) == []
    # Simulate a lost commit: the index stops one block short.
    stale = ChainIndex()
    for height in range(1, ledger.height):
        stale.on_commit(ledger.block(height), ledger.block_validity(height))
    problems = stale.verify_against(ledger)
    assert problems
    assert any("height" in p for p in problems)


# -- ledger secondary-index ordering ----------------------------------------


def test_ledger_by_sender_and_by_contract_are_chain_ordered(keypairs):
    ledger = _build(keypairs, 10)
    index = _indexed(ledger)
    expected_order = [
        (c.block_height, c.tx_index) for c in ledger.transactions(valid_only=False)
    ]
    assert expected_order == sorted(expected_order)
    for keypair in keypairs:
        committed = ledger.transactions_by_sender(keypair.address)
        positions = [(c.block_height, c.tx_index) for c in committed]
        assert positions == sorted(positions), "by-sender view must be chain-ordered"
        assert [c.transaction.tx_id for c in committed] == index.transactions_by_sender(
            keypair.address
        )
    for contract in ("articles", "votes"):
        committed = ledger.transactions_by_contract(contract)
        positions = [(c.block_height, c.tx_index) for c in committed]
        assert positions == sorted(positions), "by-contract view must be chain-ordered"
        assert [
            c.transaction.tx_id for c in committed
        ] == index.transactions_by_contract(contract)
    assert index.transactions_by_sender("acct:unknown") == []
    assert index.transactions_by_contract("unknown") == []


# -- explorer scan-path regressions -----------------------------------------


def _grow(counting, keypairs, n_blocks, txs_per_block=2):
    source = _build(keypairs, n_blocks, txs_per_block=txs_per_block)
    for height in range(1, source.height + 1):
        counting.append(source.block(height), source.block_validity(height))
    counting.block_reads = 0
    return counting


def test_find_transactions_scan_reads_only_the_blocks_it_needs(keypairs):
    """Regression: the seed materialized ``list(ledger.transactions())``
    (every block) before applying ``limit``.  The newest-first walk must
    touch only the blocks that produce the requested rows."""
    ledger = _grow(CountingLedger(), keypairs, 60, txs_per_block=2)
    rows = find_transactions(ledger, limit=4)
    assert len(rows) == 4
    assert [r["block_height"] for r in rows] == [60, 60, 59, 59]
    assert ledger.block_reads == 2  # blocks 60 and 59, nothing else


def test_find_transactions_scan_is_newest_first_with_limit(keypairs):
    ledger = _build(keypairs, 20)
    rows = find_transactions(ledger, limit=7)
    heights = [(r["block_height"],) for r in rows]
    assert heights == sorted(heights, reverse=True)
    assert len(rows) == 7
    assert find_transactions(ledger, limit=0) == []
    assert find_transactions(ledger, limit=-3) == []


def test_chain_summary_scan_is_single_pass(keypairs):
    """Regression: the seed walked the chain once for the valid count and
    a second time for the per-contract histogram."""
    ledger = _grow(CountingLedger(), keypairs, 30, txs_per_block=2)
    summary = chain_summary(ledger)
    # One pass over blocks 0..30 (+ the genesis-head property access).
    assert ledger.block_reads <= len(ledger) + 1
    assert summary["transactions"] == 60
    assert summary["valid_transactions"] + summary["invalid_transactions"] == 60
    assert sum(summary["transactions_by_contract"].values()) == 60


def test_chain_summary_scan_equals_independent_recount(keypairs):
    ledger = _build(keypairs, 15)
    summary = chain_summary(ledger)
    committed = list(ledger.transactions(valid_only=False))
    contracts = {}
    for c in committed:
        name = c.transaction.contract
        contracts[name] = contracts.get(name, 0) + 1
    assert summary["height"] == ledger.height
    assert summary["head_hash"] == ledger.head.block_hash
    assert summary["blocks"] == len(ledger)
    assert summary["transactions"] == len(committed)
    assert summary["valid_transactions"] == sum(1 for c in committed if c.valid)
    assert summary["transactions_by_contract"] == dict(sorted(contracts.items()))
    assert list(summary["transactions_by_contract"]) == sorted(contracts)


def test_explorer_on_genesis_only_chain():
    ledger = Ledger()
    index = _indexed(ledger)
    for idx in (None, index):
        summary = chain_summary(ledger, index=idx)
        assert summary["height"] == 0
        assert summary["blocks"] == 1
        assert summary["transactions"] == 0
        assert summary["valid_transactions"] == 0
        assert summary["transactions_by_contract"] == {}
        assert find_transactions(ledger, index=idx) == []
    assert describe_transaction(ledger, "missing") is None
    genesis = describe_block(ledger.block(0))
    assert genesis["height"] == 0
    assert genesis["tx_count"] == 0
    assert index.verify_against(ledger) == []


# -- scan-vs-index equivalence ----------------------------------------------


def test_index_and_scan_answer_identically(keypairs):
    ledger = _build(keypairs, 25)
    index = _indexed(ledger)
    assert chain_summary(ledger, index=index) == chain_summary(ledger)
    combos = [
        {},
        {"limit": 5},
        {"contract": "articles"},
        {"contract": "votes", "method": "cast"},
        {"method": "publish"},  # method without contract: suffix match
        {"sender": keypairs[0].address},
        {"sender": keypairs[1].address, "contract": "articles", "limit": 3},
        {"sender": keypairs[2].address, "contract": "articles", "method": "endorse"},
        {"contract": "absent"},
        {"method": "absent"},
        {"sender": "acct:absent"},
        {"limit": 0},
    ]
    for kwargs in combos:
        assert find_transactions(ledger, index=index, **kwargs) == find_transactions(
            ledger, **kwargs
        ), kwargs


def test_index_events_match_ledger_events(keypairs):
    ledger = _build(keypairs, 12)
    index = _indexed(ledger)
    for kwargs in (
        {},
        {"kind": "publishd"},
        {"contract": "articles"},
        {"contract": "articles", "kind": "endorsed"},
        {"kind": "absent"},
    ):
        assert list(index.events(ledger, **kwargs)) == list(
            ledger.events(**kwargs)
        ), kwargs


def test_stale_index_is_bypassed(keypairs):
    """An index behind the ledger must not serve wrong answers — the
    explorer falls back to the scan until the index catches up."""
    ledger = _build(keypairs, 6)
    index = ChainIndex()
    for height in range(1, 5):
        index.on_commit(ledger.block(height), ledger.block_validity(height))
    assert index.height == 4 != ledger.height
    assert chain_summary(ledger, index=index) == chain_summary(ledger)
    assert find_transactions(ledger, index=index, limit=3) == find_transactions(
        ledger, limit=3
    )


@given(
    n_blocks=st.integers(min_value=0, max_value=12),
    txs_per_block=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
    limit=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=25, deadline=None)
def test_scan_vs_index_equivalence_property(n_blocks, txs_per_block, seed, limit):
    """On a randomized chain, every filter combination answers identically
    through the index and through the ledger scan."""
    rng = random.Random(seed)
    keypairs = [KeyPair.generate(rng) for _ in range(2)]
    ledger = _build(keypairs, n_blocks, txs_per_block=txs_per_block, seed=seed)
    index = _indexed(ledger)
    assert index.verify_against(ledger) == []
    assert chain_summary(ledger, index=index) == chain_summary(ledger)
    senders = [None, keypairs[0].address, keypairs[1].address]
    filters = [(None, None), ("articles", None), ("articles", "publish"),
               (None, "cast"), ("votes", "cast")]
    for sender in senders:
        for contract, method in filters:
            assert find_transactions(
                ledger, contract=contract, method=method, sender=sender,
                limit=limit, index=index,
            ) == find_transactions(
                ledger, contract=contract, method=method, sender=sender, limit=limit
            ), (sender, contract, method, limit)
