"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch one base type at an integration boundary.  Subsystems
define narrower classes here (rather than in their own modules) to avoid
circular imports between substrates.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CryptoError(ReproError):
    """Signature/key material is malformed or verification failed hard."""


class SimulationError(ReproError):
    """Discrete-event simulator misuse (e.g. scheduling into the past)."""


class ChainError(ReproError):
    """Base class for blockchain-layer errors."""


class InvalidTransactionError(ChainError):
    """A transaction failed structural or signature validation."""


class InvalidBlockError(ChainError):
    """A block failed structural validation or does not extend the chain."""


class StateConflictError(ChainError):
    """MVCC read-set validation failed: a read key was stale at commit."""


class ContractError(ChainError):
    """A smart contract aborted, or contract invocation was malformed."""


class OutOfGasError(ContractError):
    """Contract execution exceeded its gas budget."""


class EndorsementError(ChainError):
    """A transaction did not satisfy its endorsement policy."""


class ConsensusError(ChainError):
    """Consensus protocol violation or insufficient quorum."""


class IdentityError(ReproError):
    """Unknown, unverified, or unauthorized identity."""


class PlatformError(ReproError):
    """Trusting-news platform workflow violation (e.g. publishing an
    article that never completed the editing process)."""


class CorpusError(ReproError):
    """News-corpus generation was asked for something impossible."""


class MLError(ReproError):
    """Model misuse: predicting before fitting, dimension mismatch, etc."""
