"""Crowd-reviewed establishment of distribution platforms (§V).

"There will be smart contracts for authentication and crowd sourcing
review process to allow for the establishment of a trusted distribution
platform in the blockchain platform."

Flow: a verified publisher *petitions*; verified checkers vote during a
review window; once approvals reach the quorum the petition can be
finalized, which marks the platform charter as community-trusted.  The
newsroom contract continues to gate rooms/membership; the charter adds
the community's imprimatur — and its full voting record — on-chain.
"""

from __future__ import annotations

from repro.chain.contracts import Contract, ContractContext, contract_method
from repro.core.identity import identity_key

__all__ = ["PlatformGovernanceContract", "petition_key"]


def petition_key(platform_name: str) -> str:
    return f"petition:{platform_name}"


def petition_vote_key(platform_name: str, address: str) -> str:
    return f"petition-vote:{platform_name}:{address}"


class PlatformGovernanceContract(Contract):
    """Petition -> crowd review -> charter for distribution platforms."""

    name = "governance"

    @contract_method
    def petition(self, ctx: ContractContext, platform_name: str, charter: str, quorum: int):
        """Open a petition to establish a trusted distribution platform."""
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(
            caller is not None and caller["verified"],
            "only verified identities may petition",
        )
        ctx.require(caller["role"] in ("publisher", "journalist"),
                    f"role {caller['role']!r} may not petition for a platform")
        ctx.require(quorum >= 1, "quorum must be at least 1")
        key = petition_key(platform_name)
        ctx.require(ctx.get(key) is None, f"petition for {platform_name!r} already exists")
        record = {
            "platform_name": platform_name,
            "petitioner": ctx.caller,
            "charter": charter,
            "quorum": quorum,
            "approvals": 0,
            "rejections": 0,
            "status": "open",
            "opened_at": ctx.timestamp,
        }
        ctx.put(key, record)
        ctx.emit("petition-opened", platform_name=platform_name, quorum=quorum)
        return record

    @contract_method
    def review(self, ctx: ContractContext, platform_name: str, approve: bool):
        """A verified checker reviews an open petition (one vote each)."""
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(
            caller is not None and caller["verified"],
            "only verified identities may review petitions",
        )
        ctx.require(caller["role"] == "checker", "only checkers review petitions")
        key = petition_key(platform_name)
        record = ctx.get(key)
        ctx.require(record is not None, f"no petition for {platform_name!r}")
        ctx.require(record["status"] == "open", "petition is not open")
        vote_key = petition_vote_key(platform_name, ctx.caller)
        ctx.require(ctx.get(vote_key) is None, "checker already reviewed this petition")
        ctx.put(vote_key, {"approve": bool(approve), "at": ctx.timestamp})
        if approve:
            record["approvals"] += 1
        else:
            record["rejections"] += 1
        ctx.put(key, record)
        ctx.emit("petition-reviewed", platform_name=platform_name, approve=bool(approve))
        return record

    @contract_method
    def finalize(self, ctx: ContractContext, platform_name: str):
        """Close the petition once the quorum decides it.

        Approved iff approvals reach the quorum before rejections do;
        rejected iff rejections reach the quorum.  Anyone may call — the
        outcome is determined entirely by the recorded votes.
        """
        key = petition_key(platform_name)
        record = ctx.get(key)
        ctx.require(record is not None, f"no petition for {platform_name!r}")
        ctx.require(record["status"] == "open", "petition already finalized")
        if record["approvals"] >= record["quorum"]:
            record["status"] = "approved"
        elif record["rejections"] >= record["quorum"]:
            record["status"] = "rejected"
        else:
            ctx.require(False, "quorum not yet reached on either side")
        record["finalized_at"] = ctx.timestamp
        ctx.put(key, record)
        ctx.emit("petition-finalized", platform_name=platform_name, status=record["status"])
        return record

    @contract_method
    def get_petition(self, ctx: ContractContext, platform_name: str):
        return ctx.get(petition_key(platform_name))

    @contract_method
    def is_chartered(self, ctx: ContractContext, platform_name: str):
        """True iff the platform passed its crowd review."""
        record = ctx.get(petition_key(platform_name))
        return bool(record and record["status"] == "approved")
