"""Known-clean PYF corpus — exercises scope shapes that tempt false
positives: comprehension scopes, class scopes, walrus, globals,
decorators, lambdas, try/except import fallbacks, forward-ref strings."""

from __future__ import annotations

import json
import math

try:
    from json import JSONDecodeError
except ImportError:  # pragma: no cover - always available on 3.10+
    JSONDecodeError = ValueError

_CACHE: dict[str, float] = {}
_TOTAL = 0


def bump() -> int:
    global _TOTAL
    _TOTAL += 1
    return _TOTAL


def deco(fn):
    def inner(*args, **kwargs):
        return fn(*args, **kwargs)
    return inner


@deco
def hypotenuse(a: float, b: float = 1.0) -> float:
    return math.sqrt(a * a + b * b)


class Table:
    COLUMNS = ("name", "value")
    WIDTHS = [len(column) for column in COLUMNS]  # class-scope comprehension iter

    def render(self, rows: "list[dict[str, float]]") -> str:
        cells = [
            formatted
            for row in rows
            if (total := sum(row.values())) > 0
            for formatted in (json.dumps(row), f"{total:.2f}")
        ]
        picker = lambda index=0: cells[index]
        return picker() if cells else ""


def parse(blob: str) -> dict:
    try:
        return json.loads(blob)
    except JSONDecodeError as exc:
        raise ValueError(f"bad blob: {exc}") from exc
