"""SQLite-class backend behind the same :class:`BlockStore` interface.

Layout on the node's :class:`~repro.simnet.disk.SimDisk`:

- **block WAL** — the exact PR 7 write-ahead :class:`BlockLog` (CRC-framed
  ``>2sIII`` records): commits are acknowledged durable the same way, and
  recovery trusts the same verified log prefix;
- **snapshot images** — instead of JSON snapshot files, each snapshot is
  a *real sqlite3 database image* (``chain-<height>.sqlite``): the live
  in-memory connection is ``serialize()``-d and written CRC-framed to the
  disk, newest ``keep_snapshots`` generations retained.  ``recover()``
  ``deserialize()``-s an image back into a connection — so the artifact a
  bit-flip fault corrupts, and the ladder degrades past, is a genuine
  SQLite file.

Inside the database: a ``meta`` **schema-version table** with forward
migrations (:data:`SCHEMA_VERSION`, :data:`MIGRATIONS` — an older image
is upgraded in place on load; a *newer* one is rejected as untrusted),
**interned** address/contract/method tables, a ``txs`` table keyed by
``(height, tx_index)`` with covering indexes per sender/contract/method,
and a single-row ``snapshot`` table holding the world-state and receipt
payloads in the canonical PR 7 codec.

Recovery reuses :class:`DurableStore`'s entire verify-before-trust
ladder via the snapshot-media hooks: ``_load_snapshot`` CRC-checks and
deserializes an image, validates/migrates the schema, cross-checks the
recorded height, and reconstructs the ledger's secondary indexes *from
the relational tables* — so the tx tables are load-bearing, not
decorative.  Every failure is counted through the same
``store.degradations`` ladder (a bad image is ``snapshot-corrupt``, an
image contradicting the log is ``snapshot-mismatch``), and the
:class:`RecoveredChain` shape is identical to ``DurableStore``'s.

The live connection is **volatile by design**: a crash (``recover()``)
discards it and rebuilds from the durable artifacts, then reconciles the
tx tables against the recovered chain — rows above the recovered height
are deleted, missing heights re-indexed from the recovered ledger (always
within its in-memory window, never the archive).
"""

from __future__ import annotations

import sqlite3
import struct
import zlib
from typing import TYPE_CHECKING, Any

from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.chain.state import WorldState
from repro.chain.store.base import RecoveredChain
from repro.chain.store.codec import decode_obj, encode_obj, receipt_to_obj
from repro.chain.store.durable import DurableStore
from repro.chain.store.snapshots import SnapshotCandidate
from repro.chain.transaction import TxReceipt
from repro.simnet.disk import SimDisk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.consensus.base import ConsensusEngine

__all__ = ["SQLiteStore", "SCHEMA_VERSION", "MIGRATIONS", "image_name"]

#: Current schema generation.  v1 stored method names as free text on
#: ``txs``; v2 interns them into a ``methods`` table (see MIGRATIONS).
SCHEMA_VERSION = 2

IMAGE_PREFIX = "chain-"
IMAGE_SUFFIX = ".sqlite"
_MAGIC = b"RQ"
_HEADER = struct.Struct(">2sII")  # magic, payload length, crc32

_HAS_SERIALIZE = hasattr(sqlite3.Connection, "serialize") and hasattr(
    sqlite3.Connection, "deserialize"
)

_SCHEMA_V2 = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE addresses (id INTEGER PRIMARY KEY, address TEXT UNIQUE NOT NULL);
CREATE TABLE contracts (id INTEGER PRIMARY KEY, name TEXT UNIQUE NOT NULL);
CREATE TABLE methods (
    id INTEGER PRIMARY KEY,
    contract_id INTEGER NOT NULL REFERENCES contracts(id),
    name TEXT NOT NULL,
    UNIQUE (contract_id, name)
);
CREATE TABLE txs (
    tx_id TEXT PRIMARY KEY,
    height INTEGER NOT NULL,
    tx_index INTEGER NOT NULL,
    sender_id INTEGER NOT NULL REFERENCES addresses(id),
    contract_id INTEGER NOT NULL REFERENCES contracts(id),
    method_id INTEGER NOT NULL REFERENCES methods(id),
    valid INTEGER NOT NULL
);
CREATE UNIQUE INDEX idx_txs_chain ON txs(height, tx_index);
CREATE INDEX idx_txs_sender ON txs(sender_id, height, tx_index);
CREATE INDEX idx_txs_contract ON txs(contract_id, height, tx_index);
CREATE INDEX idx_txs_method ON txs(method_id, height, tx_index);
CREATE TABLE snapshot (
    height INTEGER PRIMARY KEY,
    block_hash TEXT NOT NULL,
    state BLOB NOT NULL,
    receipts BLOB NOT NULL
);
"""


def image_name(height: int) -> str:
    return f"{IMAGE_PREFIX}{height:010d}{IMAGE_SUFFIX}"


def _image_height(name: str) -> int | None:
    if not (name.startswith(IMAGE_PREFIX) and name.endswith(IMAGE_SUFFIX)):
        return None
    try:
        return int(name[len(IMAGE_PREFIX):-len(IMAGE_SUFFIX)])
    except ValueError:
        return None


def _migrate_1_to_2(conn: sqlite3.Connection) -> None:
    """v1 -> v2: intern method names out of the ``txs.method`` text column
    into a dedicated ``methods`` table (backfill, relink, drop column)."""
    conn.executescript(
        """
        CREATE TABLE methods (
            id INTEGER PRIMARY KEY,
            contract_id INTEGER NOT NULL REFERENCES contracts(id),
            name TEXT NOT NULL,
            UNIQUE (contract_id, name)
        );
        """
    )
    conn.execute(
        "INSERT INTO methods (contract_id, name) "
        "SELECT DISTINCT contract_id, method FROM txs ORDER BY contract_id, method"
    )
    conn.execute("ALTER TABLE txs ADD COLUMN method_id INTEGER")
    conn.execute(
        "UPDATE txs SET method_id = ("
        "  SELECT m.id FROM methods m"
        "  WHERE m.contract_id = txs.contract_id AND m.name = txs.method)"
    )
    conn.execute("ALTER TABLE txs DROP COLUMN method")
    conn.execute("CREATE INDEX idx_txs_method ON txs(method_id, height, tx_index)")


#: from-version -> forward migration.  Applied in sequence on load until
#: the image reaches SCHEMA_VERSION.
MIGRATIONS = {1: _migrate_1_to_2}


class SQLiteStore(DurableStore):
    """Block WAL + serialized sqlite3 snapshot images over a SimDisk."""

    kind = "sqlite"

    def __init__(
        self,
        disk: SimDisk | None = None,
        node_id: str = "",
        snapshot_interval: int = 64,
        keep_snapshots: int = 2,
    ):
        if not _HAS_SERIALIZE:  # pragma: no cover - build-dependent
            raise RuntimeError(
                "SQLiteStore needs sqlite3.Connection.serialize/deserialize "
                "(Python >= 3.11 with a standard SQLite build)"
            )
        super().__init__(
            disk=disk,
            node_id=node_id,
            snapshot_interval=snapshot_interval,
            keep_snapshots=keep_snapshots,
        )
        self._live: sqlite3.Connection | None = None
        #: (height, connection) deserialized by the latest _load_snapshot
        #: call — adopted after recovery iff that candidate won the ladder.
        self._pending: tuple[int, sqlite3.Connection] | None = None

    # -- live connection ---------------------------------------------------

    def _fresh_conn(self) -> sqlite3.Connection:
        conn = sqlite3.connect(":memory:")
        conn.executescript(_SCHEMA_V2)
        conn.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        conn.execute("INSERT INTO meta (key, value) VALUES ('indexed_height', '0')")
        conn.commit()
        return conn

    def connection(self) -> sqlite3.Connection:
        """The live (volatile) database; created lazily."""
        if self._live is None:
            self._live = self._fresh_conn()
        return self._live

    def _close_live(self) -> None:
        if self._live is not None:
            self._live.close()
            self._live = None

    @staticmethod
    def _meta_int(conn: sqlite3.Connection, key: str) -> int | None:
        row = conn.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        try:
            return int(row[0])
        except (TypeError, ValueError):
            return None

    @staticmethod
    def _set_meta(conn: sqlite3.Connection, key: str, value: int) -> None:
        conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, str(value)),
        )

    @staticmethod
    def _intern(conn: sqlite3.Connection, table: str, column: str, value: str) -> int:
        row = conn.execute(
            f"SELECT id FROM {table} WHERE {column} = ?", (value,)
        ).fetchone()
        if row is not None:
            return row[0]
        return conn.execute(
            f"INSERT INTO {table} ({column}) VALUES (?)", (value,)
        ).lastrowid

    @classmethod
    def _intern_method(
        cls, conn: sqlite3.Connection, contract_id: int, name: str
    ) -> int:
        row = conn.execute(
            "SELECT id FROM methods WHERE contract_id = ? AND name = ?",
            (contract_id, name),
        ).fetchone()
        if row is not None:
            return row[0]
        return conn.execute(
            "INSERT INTO methods (contract_id, name) VALUES (?, ?)",
            (contract_id, name),
        ).lastrowid

    def _index_block(self, block: Block, validity: list[bool]) -> None:
        conn = self.connection()
        for tx_index, tx in enumerate(block.transactions):
            sender_id = self._intern(conn, "addresses", "address", tx.sender)
            contract_id = self._intern(conn, "contracts", "name", tx.contract)
            method_id = self._intern_method(conn, contract_id, tx.method)
            conn.execute(
                "INSERT OR REPLACE INTO txs "
                "(tx_id, height, tx_index, sender_id, contract_id, method_id, valid) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    tx.tx_id,
                    block.height,
                    tx_index,
                    sender_id,
                    contract_id,
                    method_id,
                    1 if validity[tx_index] else 0,
                ),
            )
        self._set_meta(conn, "indexed_height", block.height)
        conn.commit()

    # -- commit path -------------------------------------------------------

    def on_commit(
        self,
        block: Block,
        validity: list[bool],
        proof: Any = None,
        errors: list[str | None] | None = None,
    ) -> bool:
        acked = super().on_commit(block, validity, proof=proof, errors=errors)
        self._index_block(block, validity)
        self._count("store.sqlite_rows_indexed", len(block.transactions))
        return acked

    # -- snapshot media (the DurableStore hook points) ---------------------

    def _write_snapshot(
        self, ledger: Ledger, state: WorldState, receipts: dict[str, TxReceipt]
    ) -> int:
        conn = self.connection()
        receipt_objs = [receipt_to_obj(receipts[tx_id]) for tx_id in sorted(receipts)]
        conn.execute("DELETE FROM snapshot")
        conn.execute(
            "INSERT INTO snapshot (height, block_hash, state, receipts) "
            "VALUES (?, ?, ?, ?)",
            (
                ledger.height,
                ledger.head.block_hash,
                encode_obj(state.dump()),
                encode_obj(receipt_objs),
            ),
        )
        conn.commit()
        payload = bytes(conn.serialize())
        name = image_name(ledger.height)
        self.disk.set_role(name, "snapshot")
        framed = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload
        self.disk.append(name, framed)
        self.disk.fsync(name)
        for stale in self._snapshot_candidates()[: -self.keep_snapshots]:
            self.disk.delete(stale.name)
        return len(framed)

    def _snapshot_candidates(self) -> list[SnapshotCandidate]:
        out = []
        for name in self.disk.names():
            height = _image_height(name)
            if height is not None:
                out.append(SnapshotCandidate(name=name, height=height))
        return sorted(out, key=lambda c: c.height)

    def _load_snapshot(self, candidate: SnapshotCandidate) -> dict[str, Any] | None:
        data = self.disk.read(candidate.name)
        if len(data) < _HEADER.size:
            return None
        magic, length, crc = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC or _HEADER.size + length > len(data):
            return None
        payload = data[_HEADER.size : _HEADER.size + length]
        if zlib.crc32(payload) != crc:
            return None
        conn = sqlite3.connect(":memory:")
        try:
            conn.deserialize(payload)
            version = self._meta_int(conn, "schema_version")
            if version is None or version < 1 or version > SCHEMA_VERSION:
                # Unknown or *future* schema: refuse to guess at its
                # meaning — the ladder treats it as a corrupt snapshot.
                conn.close()
                return None
            while version < SCHEMA_VERSION:
                MIGRATIONS[version](conn)
                version += 1
                self._set_meta(conn, "schema_version", version)
                self._count("store.schema_migrations")
            conn.commit()
            row = conn.execute(
                "SELECT height, block_hash, state, receipts FROM snapshot"
            ).fetchone()
            if row is None or row[0] != candidate.height:
                conn.close()
                return None
            snap_obj = {
                "height": row[0],
                "block_hash": row[1],
                "state": decode_obj(row[2]),
                "receipts": decode_obj(row[3]),
                "indexes": self._indexes_from_tables(conn),
            }
        except (sqlite3.Error, ValueError, KeyError, TypeError):
            conn.close()
            return None
        if self._pending is not None:
            self._pending[1].close()
        self._pending = (candidate.height, conn)
        return snap_obj

    @staticmethod
    def _indexes_from_tables(conn: sqlite3.Connection) -> dict[str, Any]:
        """Rebuild the ledger's secondary-index dump from the relational
        tables — the tx tables are the source of truth, there is no
        duplicate JSON index blob to drift from them."""
        tx_locator: dict[str, list[int]] = {}
        validity: dict[str, bool] = {}
        by_sender: dict[str, list[str]] = {}
        by_contract: dict[str, list[str]] = {}
        rows = conn.execute(
            "SELECT t.tx_id, t.height, t.tx_index, a.address, c.name, t.valid "
            "FROM txs t "
            "JOIN addresses a ON a.id = t.sender_id "
            "JOIN contracts c ON c.id = t.contract_id "
            "ORDER BY t.height, t.tx_index"
        )
        for tx_id, height, tx_index, sender, contract, valid in rows:
            tx_locator[tx_id] = [height, tx_index]
            validity[tx_id] = bool(valid)
            by_sender.setdefault(sender, []).append(tx_id)
            by_contract.setdefault(contract, []).append(tx_id)
        return {
            "tx_locator": tx_locator,
            "validity": validity,
            "by_sender": by_sender,
            "by_contract": by_contract,
        }

    # -- recovery ----------------------------------------------------------

    def recover(self, engine: "ConsensusEngine | None" = None) -> RecoveredChain | None:
        # The live connection is volatile: the crash we are recovering
        # from lost it.  Only the durable artifacts speak now.
        self._close_live()
        self._pending = None
        recovered = super().recover(engine)
        if recovered is not None:
            self._adopt_connection(recovered)
        if self._pending is not None:
            self._pending[1].close()
            self._pending = None
        return recovered

    def _adopt_connection(self, recovered: RecoveredChain) -> None:
        """Re-seat the live database after the ladder settled.

        If the winning plan was ``snapshot+tail``, adopt the deserialized
        (already migrated) image; otherwise start from an empty schema.
        Then reconcile the tx tables against the recovered chain: delete
        rows above the recovered height, index the heights the image
        never saw — all inside the recovered ledger's in-memory window.
        """
        report = recovered.report
        if (
            self._pending is not None
            and report.mode == "snapshot+tail"
            and self._pending[0] == report.snapshot_height
        ):
            self._live = self._pending[1]
            self._pending = None
        else:
            self._live = self._fresh_conn()
        conn = self._live
        tip = report.recovered_height
        conn.execute("DELETE FROM txs WHERE height > ?", (tip,))
        indexed = self._meta_int(conn, "indexed_height") or 0
        indexed = min(indexed, tip)
        for height in range(indexed + 1, tip + 1):
            self._index_block(
                recovered.ledger.block(height), recovered.ledger.block_validity(height)
            )
        self._set_meta(conn, "indexed_height", tip)
        conn.commit()

    # -- queries -----------------------------------------------------------

    def query_transactions(
        self,
        contract: str | None = None,
        method: str | None = None,
        sender: str | None = None,
        limit: int = 50,
    ) -> list[dict[str, Any]]:
        """SQL twin of ``explorer.find_transactions``: same row dicts,
        same newest-first order, answered by the covering indexes."""
        if limit <= 0:
            return []
        conn = self.connection()
        clauses = []
        params: list[Any] = []
        if sender is not None:
            clauses.append("a.address = ?")
            params.append(sender)
        if contract is not None:
            clauses.append("c.name = ?")
            params.append(contract)
        if method is not None:
            clauses.append("m.name = ?")
            params.append(method)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = conn.execute(
            "SELECT t.tx_id, t.height, c.name, m.name, a.address, t.valid "
            "FROM txs t "
            "JOIN addresses a ON a.id = t.sender_id "
            "JOIN contracts c ON c.id = t.contract_id "
            "JOIN methods m ON m.id = t.method_id "
            f"{where} ORDER BY t.height DESC, t.tx_index DESC LIMIT ?",
            (*params, limit),
        )
        return [
            {
                "tx_id": tx_id,
                "block_height": height,
                "contract": contract_name,
                "method": method_name,
                "sender": sender_addr,
                "valid": bool(valid),
            }
            for tx_id, height, contract_name, method_name, sender_addr, valid in rows
        ]

    def sql_stats(self) -> dict[str, int]:
        """Row counts per table plus the indexed height (CLI surface)."""
        conn = self.connection()
        stats = {
            table: conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            for table in ("txs", "addresses", "contracts", "methods")
        }
        stats["indexed_height"] = self._meta_int(conn, "indexed_height") or 0
        stats["schema_version"] = self._meta_int(conn, "schema_version") or 0
        return stats
