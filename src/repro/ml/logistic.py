"""Binary logistic regression trained by full-batch gradient descent.

NumPy-only.  L2-regularized, with a bias column handled internally and a
fixed iteration budget — at these corpus sizes full-batch descent with an
adaptive step converges in well under a second.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite for extreme margins.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression:
    """L2-regularized logistic regression for {0, 1} labels."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 300,
        l2: float = 1e-3,
        tolerance: float = 1e-6,
    ):
        if learning_rate <= 0 or n_iterations < 1:
            raise MLError("learning_rate must be > 0 and n_iterations >= 1")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.tolerance = tolerance
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.converged_at_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise MLError("X must be 2-D with one row per label")
        if not set(np.unique(y)) <= {0.0, 1.0}:
            raise MLError("labels must be 0/1")
        n_samples, n_features = X.shape
        weights = np.zeros(n_features)
        bias = 0.0
        previous_loss = np.inf
        for iteration in range(self.n_iterations):
            probabilities = _sigmoid(X @ weights + bias)
            error = probabilities - y
            gradient_w = X.T @ error / n_samples + self.l2 * weights
            gradient_b = float(error.mean())
            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b
            # Cross-entropy loss for the convergence check.
            eps = 1e-12
            loss = float(
                -np.mean(y * np.log(probabilities + eps) + (1 - y) * np.log(1 - probabilities + eps))
                + 0.5 * self.l2 * float(weights @ weights)
            )
            if abs(previous_loss - loss) < self.tolerance:
                self.converged_at_ = iteration
                break
            previous_loss = loss
        self.weights_ = weights
        self.bias_ = bias
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise MLError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != len(self.weights_):
            raise MLError(
                f"feature dimension mismatch: fitted {len(self.weights_)}, got {X.shape[1]}"
            )
        return X @ self.weights_ + self.bias_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1 - positive, positive])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0).astype(np.int64)

    def score_fake(self, X: np.ndarray) -> np.ndarray:
        """P(fake) in [0, 1] — the platform scoring contract."""
        return self.predict_proba(X)[:, 1]
