"""DET — determinism hazards.

Every headline claim of this reproduction ("identical ledger output",
byte-for-byte chaos sweeps, deterministic RLC coefficients) assumes all
randomness flows through explicitly seeded ``random.Random`` instances.
These rules reject the ambient escape hatches:

DET001 (error)  calls through the module-level ``random.*`` API — the
                process-global RNG seeded from the OS.
DET002 (error)  ``random.Random()`` constructed with no seed argument
                (falls back to OS entropy), and ``random.SystemRandom``.
DET003 (error)  OS entropy sources: ``os.urandom``, ``uuid.uuid1/4``,
                anything from ``secrets``.
DET004 (warn)   unordered collections (``set`` displays/calls, dict
                ``.keys()``/``.values()`` views) fed straight into
                order-sensitive sinks (Merkle/hash builders) without a
                ``sorted(...)`` wrapper.  Set iteration order is
                insertion-order-dependent for ints/strs but the *intent*
                is unordered — hashes built from them are fragile.
DET005 (error)  NumPy's ambient escape hatches: calls through the
                legacy global ``numpy.random.*`` API, a no-argument
                ``numpy.random.default_rng()`` (OS entropy), and
                no-argument bit-generator constructors.  The sanctioned
                spelling — used by the vectorized cascade engine — is
                ``numpy.random.default_rng(seed)`` with an explicit
                seed, giving every array-sized draw the same
                reproducibility contract as ``random.Random(seed)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ImportMap, ModuleInfo, Rule, register

__all__ = [
    "AmbientRandomRule", "UnseededRngRule", "OsEntropyRule",
    "UnorderedSinkRule", "AmbientNumpyRandomRule",
]

#: Methods of the process-global RNG exposed at module level.
_AMBIENT_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes", "seed",
    "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
}

_OS_ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}


@register
class AmbientRandomRule(Rule):
    rule_id = "DET001"
    severity = "error"
    summary = "call through the process-global random.* API"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        imports = ImportMap(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] == "random" and len(parts) == 2 and parts[1] in _AMBIENT_RANDOM:
                yield self.finding(
                    mod, node,
                    f"call to ambient `{dotted}` uses the process-global RNG; "
                    "thread a seeded random.Random through instead",
                )


@register
class UnseededRngRule(Rule):
    rule_id = "DET002"
    severity = "error"
    summary = "random.Random() without a seed / SystemRandom"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        imports = ImportMap(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted == "random.Random" and not node.args and not node.keywords:
                yield self.finding(
                    mod, node,
                    "random.Random() with no seed draws from OS entropy; "
                    "pass an explicit seed",
                )
            elif dotted == "random.SystemRandom":
                yield self.finding(
                    mod, node,
                    "random.SystemRandom is OS entropy by definition; "
                    "use a seeded random.Random",
                )


@register
class OsEntropyRule(Rule):
    rule_id = "DET003"
    severity = "error"
    summary = "OS entropy source (os.urandom / uuid4 / secrets)"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        imports = ImportMap(mod.tree)
        # Manual stack walk so a matched `secrets.token_hex` chain is
        # reported once, not again for its inner `secrets` Name.
        stack: list[ast.AST] = [mod.tree]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Name, ast.Attribute)):
                dotted = imports.resolve(node)
                if dotted is not None and (
                    dotted in _OS_ENTROPY
                    or dotted == "secrets"
                    or dotted.startswith("secrets.")
                ):
                    yield self.finding(
                        mod, node,
                        f"`{dotted}` reads OS entropy — unreproducible across "
                        "runs; derive ids/keys from the scenario seed",
                    )
                    continue  # do not descend into the matched chain
            stack.extend(ast.iter_child_nodes(node))


#: No-argument constructions that fall back to OS entropy.
_NUMPY_UNSEEDED = {
    "numpy.random.default_rng",
    "numpy.random.PCG64", "numpy.random.PCG64DXSM",
    "numpy.random.MT19937", "numpy.random.Philox", "numpy.random.SFC64",
}


@register
class AmbientNumpyRandomRule(Rule):
    rule_id = "DET005"
    severity = "error"
    summary = "ambient numpy.random.* call / unseeded default_rng()"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        imports = ImportMap(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted is None or not dotted.startswith("numpy.random."):
                continue
            if dotted in _NUMPY_UNSEEDED:
                if not node.args and not node.keywords:
                    yield self.finding(
                        mod, node,
                        f"`{dotted}()` with no seed draws from OS entropy; "
                        "pass an explicit seed — numpy.random.default_rng(seed) "
                        "is the sanctioned spelling",
                    )
                continue  # seeded default_rng(seed) is the blessed path
            if dotted == "numpy.random.Generator":
                continue  # wraps an explicitly constructed bit generator
            yield self.finding(
                mod, node,
                f"call to ambient `{dotted}` uses NumPy's process-global "
                "RNG; thread a numpy.random.default_rng(seed) Generator "
                "through instead",
            )


def _is_unordered_expr(node: ast.AST) -> str | None:
    """Return a label when *node* evaluates to an unordered collection."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return func.id
        if isinstance(func, ast.Attribute) and func.attr in ("keys", "values"):
            return f"dict view .{func.attr}()"
    return None


@register
class UnorderedSinkRule(Rule):
    rule_id = "DET004"
    severity = "warn"
    summary = "unordered collection fed to an order-sensitive sink"

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        sinks = set(self.config.order_sensitive_sinks)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name not in sinks:
                continue
            for arg in node.args:
                label = _is_unordered_expr(arg)
                if label is not None:
                    yield self.finding(
                        mod, arg,
                        f"{label} passed to order-sensitive sink `{name}`; "
                        "wrap in sorted(...) to pin the iteration order",
                    )
