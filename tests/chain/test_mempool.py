"""Mempool admission, FIFO, capacity."""

import random

import pytest

from repro.chain import Mempool
from repro.chain.transaction import Transaction
from repro.crypto import KeyPair
from repro.errors import ChainError


def _tx(nonce):
    return Transaction.create(KeyPair.generate(random.Random(nonce)), "c", "m", {}, nonce=nonce)


def test_add_and_take_fifo():
    pool = Mempool()
    txs = [_tx(i) for i in range(5)]
    for tx in txs:
        assert pool.add(tx)
    batch = pool.take(3)
    assert [t.tx_id for t in batch] == [t.tx_id for t in txs[:3]]
    assert len(pool) == 2


def test_duplicate_rejected():
    pool = Mempool()
    tx = _tx(1)
    assert pool.add(tx)
    assert not pool.add(tx)
    assert pool.rejected_duplicate == 1


def test_capacity_enforced():
    pool = Mempool(capacity=2)
    assert pool.add(_tx(1)) and pool.add(_tx(2))
    assert not pool.add(_tx(3))
    assert pool.rejected_full == 1


def test_take_more_than_available():
    pool = Mempool()
    pool.add(_tx(1))
    assert len(pool.take(10)) == 1
    assert len(pool) == 0


def test_take_requires_positive():
    with pytest.raises(ChainError):
        Mempool().take(0)


def test_remove_committed():
    pool = Mempool()
    txs = [_tx(i) for i in range(3)]
    for tx in txs:
        pool.add(tx)
    pool.remove([txs[0].tx_id, txs[2].tx_id, "unknown"])
    assert len(pool) == 1
    assert txs[1].tx_id in pool


def test_remove_accepts_any_iterable():
    pool = Mempool()
    txs = [_tx(i) for i in range(4)]
    for tx in txs:
        pool.add(tx)
    # Generators are what the consensus layer actually passes.
    pool.remove(tx.tx_id for tx in txs[:2])
    assert len(pool) == 2
    pool.remove({txs[2].tx_id})
    assert len(pool) == 1
    pool.remove(iter([txs[3].tx_id]))
    assert len(pool) == 0


def test_backpressure_recovers_after_take():
    pool = Mempool(capacity=3)
    txs = [_tx(i) for i in range(5)]
    assert [pool.add(tx) for tx in txs[:4]] == [True, True, True, False]
    assert pool.rejected_full == 1
    # Draining frees capacity; admission resumes.
    pool.take(2)
    assert pool.add(txs[3])
    assert pool.add(txs[4])
    assert not pool.add(_tx(99))
    assert pool.rejected_full == 2


def test_fifo_preserved_across_remove():
    pool = Mempool()
    txs = [_tx(i) for i in range(5)]
    for tx in txs:
        pool.add(tx)
    pool.remove([txs[1].tx_id, txs[3].tx_id])
    batch = pool.take(10)
    assert [t.tx_id for t in batch] == [txs[0].tx_id, txs[2].tx_id, txs[4].tx_id]


def test_taken_txs_stay_reserved():
    """A tx taken into an in-flight proposal must not be re-admittable:
    a gossip echo re-entering the pool could be proposed again at a
    second height under pipelined consensus (double-commit hazard)."""
    pool = Mempool()
    tx = _tx(1)
    pool.add(tx)
    pool.take(1)
    assert tx.tx_id in pool  # reserved counts as "accepted here"
    assert not pool.add(tx)
    assert pool.rejected_duplicate == 1
    assert len(pool) == 0  # but it is not pending (take removed it)


def test_reservation_settled_by_remove():
    pool = Mempool()
    tx = _tx(1)
    pool.add(tx)
    pool.take(1)
    pool.remove([tx.tx_id])  # committed: final state
    assert tx.tx_id not in pool
    assert pool.add(tx)  # a later duplicate copy may be re-admitted


def test_requeue_returns_to_front_and_clears_reservation():
    pool = Mempool()
    taken = [_tx(1), _tx(2)]
    later = _tx(3)
    for tx in taken:
        pool.add(tx)
    batch = pool.take(2)
    pool.add(later)
    pool.requeue(batch)
    assert len(pool) == 3
    # Front placement: the requeued (older) txs come out first, in order.
    assert [t.tx_id for t in pool.take(3)] == [
        taken[0].tx_id, taken[1].tx_id, later.tx_id,
    ]


def test_requeue_bypasses_capacity():
    """Durability outranks back-pressure: a dead proposal's txs must not
    be dropped just because the pool refilled while they were out."""
    pool = Mempool(capacity=2)
    taken = [_tx(1), _tx(2)]
    for tx in taken:
        pool.add(tx)
    batch = pool.take(2)
    assert pool.add(_tx(3)) and pool.add(_tx(4))  # pool full again
    pool.requeue(batch)
    assert len(pool) == 4
    assert all(tx.tx_id in pool for tx in taken)


def test_requeue_is_idempotent():
    pool = Mempool()
    tx = _tx(1)
    pool.add(tx)
    batch = pool.take(1)
    pool.requeue(batch)
    pool.requeue(batch)  # a double requeue must not duplicate the tx
    assert len(pool) == 1
    assert [t.tx_id for t in pool.take(5)] == [tx.tx_id]


def test_release_drops_reservation_without_readmitting():
    pool = Mempool()
    tx = _tx(1)
    pool.add(tx)
    pool.take(1)
    pool.release([tx.tx_id])
    assert tx.tx_id not in pool
    assert len(pool) == 0
    assert pool.add(tx)


def test_duplicate_counting_accumulates():
    pool = Mempool()
    tx_a, tx_b = _tx(1), _tx(2)
    pool.add(tx_a)
    pool.add(tx_b)
    for _ in range(3):
        assert not pool.add(tx_a)
    assert not pool.add(tx_b)
    assert pool.rejected_duplicate == 4
    # Removal clears the dedup entry: the tx may be re-admitted.
    pool.remove([tx_a.tx_id])
    assert pool.add(tx_a)
    assert pool.rejected_duplicate == 4
