"""Explorer-grade chain index: interned tables + materialized views.

The paper's news-consumer role (Fig. 2) reads the chain far more often
than it writes it — "who published this, who endorsed it, what happened
to this article" — and every one of those questions used to be a full
O(n) ledger scan through :mod:`repro.chain.explorer`.  ``ChainIndex``
turns them into O(log n + k)-class lookups:

- **interning** — every sender address, contract name, and
  ``contract.method`` pair is assigned a small integer id once; the
  per-transaction tables store ids, not strings, so a million-tx index
  costs a few machine words per transaction instead of a few hundred
  bytes;
- **materialized views** — tx-by-id, txs-by-sender / -contract /
  -method (chain order, so newest-first is a reversed walk), valid-tx
  events-by-kind, and per-contract counts are maintained incrementally
  as blocks commit;
- **incremental feed** — the owning peer calls :meth:`on_commit` with
  exactly the ``(block, validity)`` pair it hands its
  :class:`~repro.chain.store.BlockStore`, so the index is never ahead of
  or behind durability by more than the current call;
- **full rebuild** — :meth:`reindex` reconstructs everything from a
  ledger (the recovery/migration path: after ``Peer.restart`` the
  recovered ledger is re-walked, archive window included).

The ledger scan stays available as the cross-checked fallback: every
view answers *identically* to the equivalent scan (asserted by the
scan-vs-index equivalence tests and ``benchmarks/bench_explorer.py``),
and :meth:`verify_against` re-derives the counts from a ledger so an
index that ever drifted is loud, not subtly wrong.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from repro.chain.block import Block
from repro.errors import InvalidBlockError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.ledger import Ledger

__all__ = ["ChainIndex", "Interner", "TxView"]


class Interner:
    """Bidirectional string <-> small-int table (dipdup-style interning)."""

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._values: list[str] = []

    def intern(self, value: str) -> int:
        """Return *value*'s id, assigning the next one on first sight."""
        found = self._ids.get(value)
        if found is not None:
            return found
        assigned = len(self._values)
        self._ids[value] = assigned
        self._values.append(value)
        return assigned

    def lookup(self, value: str) -> int | None:
        """The id for *value*, or ``None`` if it was never interned."""
        return self._ids.get(value)

    def value(self, interned: int) -> str:
        return self._values[interned]

    def __len__(self) -> int:
        return len(self._values)


class TxView:
    """One indexed transaction, resolved back to strings."""

    __slots__ = ("tx_id", "block_height", "tx_index", "sender", "contract", "method", "valid")

    def __init__(self, tx_id: str, block_height: int, tx_index: int,
                 sender: str, contract: str, method: str, valid: bool):
        self.tx_id = tx_id
        self.block_height = block_height
        self.tx_index = tx_index
        self.sender = sender
        self.contract = contract
        self.method = method
        self.valid = valid


class ChainIndex:
    """Incremental secondary index over one peer's committed chain.

    Internally every transaction gets an *ordinal* (its position in
    chain order); the per-ordinal columns are parallel lists of ints, and
    each view is a list of ordinals in chain order.  Newest-first queries
    walk a view backwards and stop at ``limit`` — bounded work even on a
    100k-block chain.
    """

    def __init__(self) -> None:
        self.height = 0  # highest indexed block height
        self.addresses = Interner()
        self.contracts = Interner()
        self.methods = Interner()  # interns "contract.method" pairs
        # Parallel per-ordinal columns (ints except the tx id).
        self._tx_ids: list[str] = []
        self._heights: list[int] = []
        self._indexes: list[int] = []
        self._senders: list[int] = []
        self._contracts: list[int] = []
        self._methods: list[int] = []
        self._valid: list[bool] = []
        self._ordinal_by_tx: dict[str, int] = {}
        # Views: ordinals in chain order.
        self._by_sender: dict[int, list[int]] = {}
        self._by_contract: dict[int, list[int]] = {}
        self._by_method: dict[int, list[int]] = {}
        #: kind -> [(ordinal, event index within the tx)], valid txs only.
        self._events_by_kind: dict[str, list[tuple[int, int]]] = {}
        self._n_valid = 0

    # -- feed --------------------------------------------------------------

    def on_commit(self, block: Block, validity: list[bool]) -> None:
        """Index one committed block (must extend the indexed height).

        Called by the owning peer with the same arguments it hands its
        block store, immediately after ``Ledger.append`` accepted the
        block — so a block the ledger rejected never pollutes the index.
        """
        if block.height != self.height + 1:
            raise InvalidBlockError(
                f"index at height {self.height} cannot apply block {block.height}"
            )
        if len(validity) != len(block.transactions):
            raise InvalidBlockError("validity vector length mismatch")
        for tx_index, tx in enumerate(block.transactions):
            ordinal = len(self._tx_ids)
            sender_id = self.addresses.intern(tx.sender)
            contract_id = self.contracts.intern(tx.contract)
            method_id = self.methods.intern(f"{tx.contract}.{tx.method}")
            valid = validity[tx_index]
            self._tx_ids.append(tx.tx_id)
            self._heights.append(block.height)
            self._indexes.append(tx_index)
            self._senders.append(sender_id)
            self._contracts.append(contract_id)
            self._methods.append(method_id)
            self._valid.append(valid)
            self._ordinal_by_tx[tx.tx_id] = ordinal
            self._by_sender.setdefault(sender_id, []).append(ordinal)
            self._by_contract.setdefault(contract_id, []).append(ordinal)
            self._by_method.setdefault(method_id, []).append(ordinal)
            if valid:
                self._n_valid += 1
                for event_index, event in enumerate(tx.events):
                    kind = event.get("kind")
                    self._events_by_kind.setdefault(kind, []).append(
                        (ordinal, event_index)
                    )
        self.height = block.height

    def reindex(self, ledger: "Ledger") -> int:
        """Full rebuild from *ledger* (recovery / migration path).

        Walks every block — including a recovered ledger's archive window,
        which decodes log records on demand — so this is O(chain); it runs
        at restart, not on the query path.  Returns the indexed height.
        """
        self.__init__()
        for height in range(1, ledger.height + 1):
            self.on_commit(ledger.block(height), ledger.block_validity(height))
        return self.height

    # -- views -------------------------------------------------------------

    def __len__(self) -> int:
        """Total indexed transactions (valid and invalid)."""
        return len(self._tx_ids)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._ordinal_by_tx

    @property
    def valid_transactions(self) -> int:
        return self._n_valid

    def get(self, tx_id: str) -> TxView | None:
        """tx-by-id: the indexed row, or ``None`` if unknown."""
        ordinal = self._ordinal_by_tx.get(tx_id)
        if ordinal is None:
            return None
        return self._view(ordinal)

    def locator(self, tx_id: str) -> tuple[int, int] | None:
        """``(block_height, tx_index)`` for *tx_id*, or ``None``."""
        ordinal = self._ordinal_by_tx.get(tx_id)
        if ordinal is None:
            return None
        return self._heights[ordinal], self._indexes[ordinal]

    def _view(self, ordinal: int) -> TxView:
        return TxView(
            tx_id=self._tx_ids[ordinal],
            block_height=self._heights[ordinal],
            tx_index=self._indexes[ordinal],
            sender=self.addresses.value(self._senders[ordinal]),
            contract=self.contracts.value(self._contracts[ordinal]),
            method=self.methods.value(self._methods[ordinal]).split(".", 1)[1],
            valid=self._valid[ordinal],
        )

    def _candidate_ordinals(
        self,
        contract: str | None = None,
        method: str | None = None,
        sender: str | None = None,
    ) -> list[int] | None:
        """The smallest view covering the filters (chain order), or
        ``None`` for "no filter: every ordinal"."""
        candidates: list[list[int]] = []
        if sender is not None:
            sender_id = self.addresses.lookup(sender)
            if sender_id is None:
                return []
            candidates.append(self._by_sender.get(sender_id, []))
        if contract is not None and method is not None:
            method_id = self.methods.lookup(f"{contract}.{method}")
            if method_id is None:
                return []
            candidates.append(self._by_method.get(method_id, []))
        elif contract is not None:
            contract_id = self.contracts.lookup(contract)
            if contract_id is None:
                return []
            candidates.append(self._by_contract.get(contract_id, []))
        if not candidates:
            return None
        return min(candidates, key=len)

    def find_transactions(
        self,
        contract: str | None = None,
        method: str | None = None,
        sender: str | None = None,
        limit: int = 50,
    ) -> list[TxView]:
        """Filtered search, newest first (height desc, index desc).

        Picks the most selective view for the given filters, walks it
        backwards, post-filters the remaining predicates on interned ids
        (no block or transaction objects are touched), and stops at
        *limit* — O(view tail + k), not O(chain).
        """
        ordinals = self._candidate_ordinals(contract, method, sender)
        if ordinals is None:
            ordinals = range(len(self._tx_ids))
        sender_id = self.addresses.lookup(sender) if sender is not None else None
        contract_id = self.contracts.lookup(contract) if contract is not None else None
        method_id = (
            self.methods.lookup(f"{contract}.{method}")
            if contract is not None and method is not None
            else None
        )
        # ``method`` without ``contract`` has no dedicated view: fall back
        # to comparing the resolved method-name suffix per candidate.
        out: list[TxView] = []
        for ordinal in reversed(ordinals):
            if sender_id is not None and self._senders[ordinal] != sender_id:
                continue
            if method_id is not None:
                if self._methods[ordinal] != method_id:
                    continue
            else:
                if contract_id is not None and self._contracts[ordinal] != contract_id:
                    continue
                if method is not None and not self.methods.value(
                    self._methods[ordinal]
                ).endswith(f".{method}"):
                    continue
            out.append(self._view(ordinal))
            if len(out) >= limit:
                break
        return out

    def transactions_by_sender(self, sender: str) -> list[str]:
        """All of *sender*'s tx ids, chain order (mirrors the ledger view)."""
        sender_id = self.addresses.lookup(sender)
        if sender_id is None:
            return []
        return [self._tx_ids[o] for o in self._by_sender.get(sender_id, [])]

    def transactions_by_contract(self, contract: str) -> list[str]:
        contract_id = self.contracts.lookup(contract)
        if contract_id is None:
            return []
        return [self._tx_ids[o] for o in self._by_contract.get(contract_id, [])]

    def contract_counts(self) -> dict[str, int]:
        """Per-contract committed-tx counts, name-sorted (summary view)."""
        counts = {
            self.contracts.value(contract_id): len(ordinals)
            for contract_id, ordinals in self._by_contract.items()
        }
        return dict(sorted(counts.items()))

    def events(
        self,
        ledger: "Ledger",
        contract: str | None = None,
        kind: str | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Indexed equivalent of :meth:`Ledger.events`: same enriched
        dicts, same order, but only the matching transactions' blocks are
        ever touched (event *payloads* live in the transactions, so the
        index stores ``(ordinal, event index)`` and resolves on demand).
        """
        if kind is not None:
            entries = self._events_by_kind.get(kind, [])
            for ordinal, event_index in entries:
                if contract is not None and self.contracts.value(
                    self._contracts[ordinal]
                ) != contract:
                    continue
                yield self._resolve_event(ledger, ordinal, event_index)
            return
        for ordinal in range(len(self._tx_ids)):
            if not self._valid[ordinal]:
                continue
            if contract is not None and self.contracts.value(
                self._contracts[ordinal]
            ) != contract:
                continue
            tx = ledger.block(self._heights[ordinal]).transactions[self._indexes[ordinal]]
            for event in tx.events:
                enriched = dict(event)
                enriched["_tx_id"] = tx.tx_id
                enriched["_sender"] = tx.sender
                enriched["_height"] = self._heights[ordinal]
                yield enriched

    def _resolve_event(
        self, ledger: "Ledger", ordinal: int, event_index: int
    ) -> dict[str, Any]:
        height = self._heights[ordinal]
        tx = ledger.block(height).transactions[self._indexes[ordinal]]
        enriched = dict(tx.events[event_index])
        enriched["_tx_id"] = tx.tx_id
        enriched["_sender"] = tx.sender
        enriched["_height"] = height
        return enriched

    # -- integrity ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "height": self.height,
            "transactions": len(self._tx_ids),
            "valid_transactions": self._n_valid,
            "addresses": len(self.addresses),
            "contracts": len(self.contracts),
            "methods": len(self.methods),
            "event_kinds": len(self._events_by_kind),
        }

    def verify_against(self, ledger: "Ledger") -> list[str]:
        """Cross-check the index against a full ledger scan.

        Returns a list of human-readable discrepancies (empty = clean).
        This is the "scan as fallback oracle" contract made executable —
        cheap enough to run in tests and the explorer CLI, loud when an
        incremental update ever drifts from the chain.
        """
        problems: list[str] = []
        if ledger.height != self.height:
            problems.append(
                f"index height {self.height} != ledger height {ledger.height}"
            )
        scanned_total = 0
        scanned_valid = 0
        scanned_contracts: dict[str, int] = {}
        for committed in ledger.transactions(valid_only=False):
            scanned_total += 1
            if committed.valid:
                scanned_valid += 1
            tx = committed.transaction
            scanned_contracts[tx.contract] = scanned_contracts.get(tx.contract, 0) + 1
            row = self.get(tx.tx_id)
            if row is None:
                problems.append(f"tx {tx.tx_id[:12]} missing from index")
                continue
            if (row.block_height, row.tx_index, row.valid) != (
                committed.block_height, committed.tx_index, committed.valid
            ):
                problems.append(f"tx {tx.tx_id[:12]} indexed at wrong position")
        if scanned_total != len(self._tx_ids):
            problems.append(
                f"index holds {len(self._tx_ids)} txs, scan found {scanned_total}"
            )
        if scanned_valid != self._n_valid:
            problems.append(
                f"index counts {self._n_valid} valid txs, scan found {scanned_valid}"
            )
        if dict(sorted(scanned_contracts.items())) != self.contract_counts():
            problems.append("per-contract counts diverge from scan")
        return problems
