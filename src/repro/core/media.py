"""Multimedia provenance: the Fig. 1 "fake multimedia detection" component
wired into the platform.

The deepfake problem the paper opens with (Face2Face, FakeApp) is an
*authenticity* problem: is this clip the one that was captured?  The
blockchain answer implemented here:

1. at capture time, the capturing account registers the media's
   fingerprint (per-block signal statistics, :mod:`repro.ml.deepfake`)
   on-chain — an immutable, timestamped commitment;
2. when an article attaches media, the platform re-derives the suspect
   fingerprint, compares it against the registered one, and records the
   tamper score with the supply-chain node;
3. the article's AI signal becomes a fusion of text P(fake) and media
   tamper score, so a deepfaked clip drags the article's ranking down
   even when the text reads neutrally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chain.contracts import Contract, ContractContext, contract_method
from repro.core.identity import identity_key
from repro.ml.deepfake import DeepfakeDetector, MediaFingerprint

__all__ = ["MediaRegistryContract", "MediaVerifier", "MediaAssessment", "media_key"]


def media_key(media_id: str) -> str:
    return f"media:{media_id}"


def _fingerprint_to_record(fingerprint: MediaFingerprint) -> dict:
    return {
        "block_size": fingerprint.block_size,
        "block_hashes": list(fingerprint.block_hashes),
        "block_means": list(fingerprint.block_means),
        "block_stds": list(fingerprint.block_stds),
    }


def _fingerprint_from_record(record: dict) -> MediaFingerprint:
    return MediaFingerprint(
        block_size=record["block_size"],
        block_hashes=tuple(record["block_hashes"]),
        block_means=tuple(record["block_means"]),
        block_stds=tuple(record["block_stds"]),
    )


class MediaRegistryContract(Contract):
    """On-chain registry of media fingerprints, committed at capture."""

    name = "media"

    @contract_method
    def register(self, ctx: ContractContext, media_id: str, fingerprint: dict, description: str):
        """Commit a capture fingerprint (registered identities only)."""
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(caller is not None, "unregistered identities cannot register media")
        key = media_key(media_id)
        ctx.require(ctx.get(key) is None, f"media {media_id} already registered")
        ctx.require(
            isinstance(fingerprint, dict) and fingerprint.get("block_hashes"),
            "fingerprint must carry block hashes",
        )
        record = {
            "media_id": media_id,
            "fingerprint": fingerprint,
            "description": description,
            "captured_by": ctx.caller,
            "registered_at": ctx.timestamp,
        }
        ctx.put(key, record)
        ctx.emit("media-registered", media_id=media_id, blocks=len(fingerprint["block_hashes"]))
        return record

    @contract_method
    def get_media(self, ctx: ContractContext, media_id: str):
        return ctx.get(media_key(media_id))

    @contract_method
    def record_assessment(
        self, ctx: ContractContext, media_id: str, article_id: str, tamper_score: float
    ):
        """Attach a tamper assessment of an article's media to the ledger."""
        ctx.require(ctx.get(media_key(media_id)) is not None, f"no media {media_id}")
        ctx.require(0.0 <= tamper_score <= 1.0, "tamper_score must be in [0, 1]")
        key = f"mediacheck:{article_id}:{media_id}"
        ctx.require(ctx.get(key) is None, "assessment already recorded")
        record = {
            "media_id": media_id,
            "article_id": article_id,
            "tamper_score": tamper_score,
            "assessed_by": ctx.caller,
            "assessed_at": ctx.timestamp,
        }
        ctx.put(key, record)
        ctx.emit("media-assessed", media_id=media_id, article_id=article_id,
                 tamper_score=tamper_score)
        return record


@dataclass(frozen=True)
class MediaAssessment:
    """Verdict for one attached media asset."""

    media_id: str
    registered: bool
    tamper_score: float  # 1.0 when unregistered: unverifiable provenance

    @property
    def authentic(self) -> bool:
        return self.registered and self.tamper_score <= 0.05


class MediaVerifier:
    """Off-chain verification logic over the on-chain registry."""

    def __init__(self, detector: DeepfakeDetector | None = None):
        self.detector = detector or DeepfakeDetector()

    @staticmethod
    def fingerprint_record(signal: np.ndarray, block_size: int = 64) -> dict:
        """Fingerprint a captured signal into the contract's record form."""
        return _fingerprint_to_record(MediaFingerprint.of(signal, block_size))

    def assess(self, registered_record: dict | None, suspect_signal: np.ndarray,
               media_id: str) -> MediaAssessment:
        """Score a suspect signal against its (possibly absent) registration.

        Unregistered media scores 1.0 — content whose capture provenance
        cannot be established is treated as unverifiable, the same
        conservative stance the factual database takes toward
        untraceable text.
        """
        if registered_record is None:
            return MediaAssessment(media_id=media_id, registered=False, tamper_score=1.0)
        fingerprint = _fingerprint_from_record(registered_record["fingerprint"])
        score = self.detector.tamper_score(fingerprint, suspect_signal)
        return MediaAssessment(media_id=media_id, registered=True, tamper_score=score)
