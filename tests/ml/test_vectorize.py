"""Vectorizers: counts, TF-IDF, hashing, scaling."""

import numpy as np
import pytest

from repro.errors import MLError
from repro.ml import CountVectorizer, HashingVectorizer, TfidfVectorizer
from repro.ml.vectorize import ScaledVectorizer, StandardScaler
from repro.ml.features import StylometricExtractor

DOCS = [
    "the cat sat on the mat",
    "the dog sat on the log",
    "cats and dogs living together",
]


def test_count_vectorizer_counts():
    vec = CountVectorizer()
    X = vec.fit_transform(DOCS)
    assert X.shape == (3, len(vec.vocabulary_))
    the_col = vec.vocabulary_["the"]
    assert X[0, the_col] == 2


def test_count_vectorizer_unknown_terms_ignored():
    vec = CountVectorizer().fit(DOCS)
    X = vec.transform(["completely novel words"])
    assert X.sum() == 0


def test_count_min_df_filters():
    vec = CountVectorizer(min_df=2).fit(DOCS)
    assert "cat" not in vec.vocabulary_  # appears in one doc
    assert "the" in vec.vocabulary_


def test_count_max_features_keeps_highest_df():
    vec = CountVectorizer(max_features=2).fit(DOCS)
    assert len(vec.vocabulary_) == 2
    # Every kept term must have document frequency 2 (the maximum here);
    # df-1 terms like "cat" must be evicted first.
    assert "cat" not in vec.vocabulary_
    assert "mat" not in vec.vocabulary_


def test_count_unfitted_raises():
    with pytest.raises(MLError):
        CountVectorizer().transform(DOCS)
    with pytest.raises(MLError):
        CountVectorizer(min_df=0)


def test_tfidf_rows_unit_norm():
    X = TfidfVectorizer().fit_transform(DOCS)
    norms = np.linalg.norm(X, axis=1)
    assert np.allclose(norms, 1.0)


def test_tfidf_downweights_common_terms():
    vec = TfidfVectorizer().fit(DOCS)
    the_idf = vec.idf_[vec.vocabulary_["the"]]
    cat_idf = vec.idf_[vec.vocabulary_["cat"]]
    assert cat_idf > the_idf


def test_tfidf_unfitted_raises():
    with pytest.raises(MLError):
        TfidfVectorizer().transform(DOCS)


def test_hashing_vectorizer_stateless_and_stable():
    vec = HashingVectorizer(n_features=64)
    X1 = vec.transform(DOCS)
    X2 = HashingVectorizer(n_features=64).transform(DOCS)
    assert np.array_equal(X1, X2)
    assert X1.shape == (3, 64)


def test_hashing_vectorizer_normalized():
    X = HashingVectorizer(n_features=128).transform(DOCS)
    assert np.allclose(np.linalg.norm(X, axis=1), 1.0)


def test_hashing_vectorizer_validates():
    with pytest.raises(MLError):
        HashingVectorizer(n_features=1)


def test_standard_scaler_zero_mean_unit_std():
    X = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
    scaled = StandardScaler().fit_transform(X)
    assert np.allclose(scaled.mean(axis=0), 0.0)
    assert np.allclose(scaled.std(axis=0), 1.0)


def test_standard_scaler_constant_column_safe():
    X = np.array([[1.0, 5.0], [1.0, 7.0]])
    scaled = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(scaled))


def test_standard_scaler_unfitted():
    with pytest.raises(MLError):
        StandardScaler().transform(np.zeros((1, 2)))


def test_scaled_vectorizer_composes():
    vec = ScaledVectorizer(StylometricExtractor())
    X = vec.fit_transform(DOCS)
    assert X.shape[0] == 3
    assert np.all(np.isfinite(vec.transform(["another text entirely"])))
