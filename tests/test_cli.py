"""CLI entry points (repro-news)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["demo", "nonexistent"])


def test_corpus_command(tmp_path, capsys):
    out = tmp_path / "c.jsonl"
    code = main(["corpus", "--out", str(out), "--factual", "20", "--fake", "20", "--seed", "3"])
    assert code == 0
    assert out.exists()
    captured = capsys.readouterr().out
    assert "wrote 40 articles" in captured
    from repro.corpus.io import load_corpus

    corpus = load_corpus(out)
    assert len(corpus.fakes) == 20


def test_race_command(capsys):
    code = main(["race", "--trials", "2", "--agents", "150", "--seed", "9"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "no platform" in captured and "with platform" in captured


def test_stats_command(capsys):
    code = main(["stats"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "topic statistics" in captured
    assert "platform stats" in captured


def test_demo_quickstart(capsys, monkeypatch):
    import pathlib

    monkeypatch.chdir(pathlib.Path(__file__).resolve().parents[1])
    code = main(["demo", "quickstart"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "published report-1" in captured


def test_demo_missing_examples_dir(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    import repro.cli as cli_module

    monkeypatch.setattr(
        cli_module, "_DEMO_FILES", {"quickstart": "definitely-not-there.py"}
    )
    code = main(["demo", "quickstart"])
    assert code == 1


def test_report_missing_trace(tmp_path, capsys):
    code = main(["report", "--trace", str(tmp_path / "nope.jsonl")])
    assert code == 1
    assert "no trace at" in capsys.readouterr().err


def test_report_from_exported_trace(tmp_path, capsys):
    from repro.obs import MetricsRegistry, Tracer, export_jsonl

    registry = MetricsRegistry()
    registry.histogram("phase.commit_latency", peer="p0").observe(0.3)
    registry.counter("peer.txs_committed_valid", peer="p0").inc(2)
    tracer = Tracer(clock=lambda: 0.0, registry=registry)
    trace = tmp_path / "t.jsonl"
    export_jsonl(trace, registry, tracer, meta={"run": "cli-test"})

    out = tmp_path / "report.md"
    code = main(["report", "--trace", str(trace), "--out", str(out)])
    assert code == 0
    stdout = capsys.readouterr().out
    assert "| commit_latency | 1 |" in stdout
    assert out.read_text().rstrip("\n") == stdout.rstrip("\n")


def test_report_demo_writes_trace_and_phases(tmp_path, capsys):
    trace = tmp_path / "demo.jsonl"
    code = main(["report", "--demo", "--trace", str(trace), "--txs", "12"])
    assert code == 0
    assert trace.exists()
    stdout = capsys.readouterr().out
    for phase in ("endorse", "gossip", "order_wait", "consensus_round",
                  "commit_latency"):
        assert f"| {phase} |" in stdout, phase
