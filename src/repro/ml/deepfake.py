"""Simulated multimedia tamper detection (the Fig. 1 "fake multimedia
detection component").

The paper's deepfake concern (Face2Face, FakeApp, §I) is about detecting
manipulated audiovisual signals.  Real video models are out of scope
offline, so — per the substitution rule in DESIGN.md — media is modelled
as a 1-D sampled signal with a registered *fingerprint* (per-block
statistics committed at capture time, e.g. on-chain).  Tampering
replaces signal segments; the detector compares a suspect signal's block
statistics against the registered fingerprint and scores the fraction of
inconsistent blocks.

This preserves the code path the platform needs: a media score in
[0, 1] fused with the text score, with ground truth available because
the tamper mask is known by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.hashing import sha256_hex
from repro.errors import MLError

__all__ = ["MediaFingerprint", "capture_signal", "tamper_signal", "DeepfakeDetector"]


@dataclass(frozen=True)
class MediaFingerprint:
    """Per-block commitments to a captured signal.

    ``block_hashes`` detect any bit-level change; ``block_means`` /
    ``block_stds`` allow a *graded* inconsistency score for re-encoded
    (noisy but honest) copies, so mere recompression does not score as a
    deepfake.
    """

    block_size: int
    block_hashes: tuple[str, ...]
    block_means: tuple[float, ...]
    block_stds: tuple[float, ...]

    @classmethod
    def of(cls, signal: np.ndarray, block_size: int = 64) -> "MediaFingerprint":
        if block_size < 2:
            raise MLError("block_size must be >= 2")
        blocks = _blocks(signal, block_size)
        return cls(
            block_size=block_size,
            block_hashes=tuple(sha256_hex(b.tobytes()) for b in blocks),
            block_means=tuple(float(b.mean()) for b in blocks),
            block_stds=tuple(float(b.std()) for b in blocks),
        )


def _blocks(signal: np.ndarray, block_size: int) -> list[np.ndarray]:
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1 or len(signal) < block_size:
        raise MLError("signal must be 1-D and at least one block long")
    n_blocks = len(signal) // block_size
    return [signal[i * block_size : (i + 1) * block_size] for i in range(n_blocks)]


def capture_signal(rng: np.random.Generator, length: int = 2048) -> np.ndarray:
    """Synthesize an 'authentic capture': smooth trend + sensor noise."""
    t = np.linspace(0.0, 8.0 * np.pi, length)
    phases = rng.uniform(0, 2 * np.pi, size=3)
    amplitudes = rng.uniform(0.5, 1.5, size=3)
    trend = sum(a * np.sin((k + 1) * t / 3 + p) for k, (a, p) in enumerate(zip(amplitudes, phases)))
    return trend + rng.normal(0.0, 0.05, size=length)


def tamper_signal(
    signal: np.ndarray,
    rng: np.random.Generator,
    n_segments: int = 3,
    segment_length: int = 128,
    strength: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Deepfake-style manipulation: splice alien segments into the signal.

    Returns ``(tampered_signal, mask)`` where mask marks altered samples.
    """
    if n_segments < 1:
        raise MLError("need at least one tampered segment")
    tampered = np.asarray(signal, dtype=np.float64).copy()
    mask = np.zeros(len(tampered), dtype=bool)
    for _ in range(n_segments):
        start = int(rng.integers(0, max(1, len(tampered) - segment_length)))
        stop = start + segment_length
        alien = strength * rng.normal(0.0, 1.0, size=stop - start) + rng.uniform(-2, 2)
        tampered[start:stop] = alien
        mask[start:stop] = True
    return tampered, mask


class DeepfakeDetector:
    """Scores a suspect signal against its registered fingerprint."""

    def __init__(self, mean_tolerance: float = 0.25, std_tolerance: float = 0.25):
        self.mean_tolerance = mean_tolerance
        self.std_tolerance = std_tolerance

    def tamper_score(self, fingerprint: MediaFingerprint, suspect: np.ndarray) -> float:
        """Fraction of blocks statistically inconsistent with capture.

        A truncated/extended suspect is suspicious in proportion to the
        missing/extra blocks, so length mismatch contributes too.
        """
        blocks = _blocks(suspect, fingerprint.block_size)
        n_registered = len(fingerprint.block_hashes)
        n_compare = min(len(blocks), n_registered)
        if n_compare == 0:
            return 1.0
        inconsistent = 0
        for index in range(n_compare):
            block = blocks[index]
            if sha256_hex(block.tobytes()) == fingerprint.block_hashes[index]:
                continue  # bit-identical: certainly consistent
            mean_gap = abs(float(block.mean()) - fingerprint.block_means[index])
            std_gap = abs(float(block.std()) - fingerprint.block_stds[index])
            if mean_gap > self.mean_tolerance or std_gap > self.std_tolerance:
                inconsistent += 1
        length_penalty = abs(len(blocks) - n_registered)
        return (inconsistent + length_penalty) / max(len(blocks), n_registered)

    def is_tampered(
        self, fingerprint: MediaFingerprint, suspect: np.ndarray, threshold: float = 0.05
    ) -> bool:
        return self.tamper_score(fingerprint, suspect) > threshold
