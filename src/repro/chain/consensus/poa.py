"""Round-robin proof-of-authority ordering (Fabric-style orderer).

The leader for height *h* is ``validators[h % n]``.  The leader batches
its mempool into a block every ``block_interval`` and broadcasts it;
followers accept a block iff it comes from the expected leader and
extends their chain.  There is no voting — authority is the trust model,
exactly like a Fabric ordering service — which makes this the throughput
upper bound PBFT is compared against in E9.

Crash behaviour: if the scheduled leader is crashed, that height simply
stalls until rotation reaches a live leader (followers accept any
height-h block from the height-h leader, so a recovered leader can fill
the gap).  A production orderer would failover faster; for experiments
the stall *is* the observable cost of leader failure.
"""

from __future__ import annotations

from repro.chain.block import Block
from repro.chain.consensus.base import ConsensusEngine
from repro.simnet.network import Message

__all__ = ["RoundRobinOrderer"]

_KIND_BLOCK = "poa-block"
_KIND_SYNC_REQUEST = "poa-sync-request"


class RoundRobinOrderer(ConsensusEngine):
    """Rotating single-leader block production."""

    def __init__(
        self,
        validators: list[str],
        block_interval: float = 1.0,
        max_block_txs: int = 500,
    ):
        super().__init__()
        if not validators:
            raise ValueError("need at least one validator")
        self.validators = list(validators)
        self.block_interval = block_interval
        self.max_block_txs = max_block_txs
        self._tick_scheduled = False
        self._future_blocks: dict[int, Block] = {}
        self._stall_ticks = 0
        self._last_seen_height = -1

    def leader_for(self, height: int) -> str:
        return self.validators[height % len(self.validators)]

    def start(self) -> None:
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        if self.stopped or self._tick_scheduled:
            return
        self._tick_scheduled = True
        assert self.peer is not None
        self.peer.sim.schedule(self.block_interval, self._tick, label=f"poa-tick:{self.peer.node_id}")

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self.stopped:
            return
        peer = self.peer
        assert peer is not None
        next_height = peer.ledger.height + 1
        if self.leader_for(next_height) == peer.node_id and not peer.crashed:
            self._propose(next_height)
        self._anti_entropy(peer)
        self._schedule_tick()

    def _anti_entropy(self, peer) -> None:
        """Stall recovery: a peer that is behind *and* is the next
        leader deadlocks the rotation (it doesn't know it is behind).
        If the chain hasn't advanced for two ticks while work is
        pending, probe another validator for missed blocks."""
        if peer.ledger.height != self._last_seen_height:
            self._last_seen_height = peer.ledger.height
            self._stall_ticks = 0
            return
        if len(peer.mempool) == 0 or peer.crashed:
            return
        self._stall_ticks += 1
        if self._stall_ticks < 2:
            return
        others = [v for v in self.validators if v != peer.node_id]
        if not others:
            return
        target = others[(self._stall_ticks + peer.ledger.height) % len(others)]
        peer.send(target, _KIND_SYNC_REQUEST, peer.ledger.height + 1)

    def _propose(self, height: int) -> None:
        peer = self.peer
        assert peer is not None
        batch = peer.mempool.take(self.max_block_txs)
        if not batch:
            return
        block = Block.build(
            height=height,
            prev_hash=peer.ledger.head.block_hash,
            timestamp=peer.sim.now,
            proposer=peer.node_id,
            transactions=batch,
        )
        peer.broadcast(_KIND_BLOCK, block)
        peer.commit_block(block)  # leader commits its own block immediately

    def on_message(self, message: Message) -> bool:
        peer = self.peer
        assert peer is not None
        if message.kind == _KIND_SYNC_REQUEST:
            # A lagging peer asked for blocks it missed; replay from our chain.
            start: int = message.payload
            for height in range(start, peer.ledger.height + 1):
                peer.send(message.src, _KIND_BLOCK, peer.ledger.block(height))
            return True
        if message.kind != _KIND_BLOCK:
            return False
        block: Block = message.payload
        expected_leader = self.leader_for(block.height)
        if block.proposer != expected_leader:
            return True  # consume but ignore forged leadership claims
        if block.height > peer.ledger.height + 1:
            # Missed one or more blocks (e.g. dropped message): buffer this
            # one and ask the sender to replay the gap.
            self._future_blocks[block.height] = block
            peer.send(message.src, _KIND_SYNC_REQUEST, peer.ledger.height + 1)
            return True
        if block.height == peer.ledger.height + 1:
            peer.commit_block(block)
            # Drain any buffered successors that are now applicable.
            while peer.ledger.height + 1 in self._future_blocks:
                peer.commit_block(self._future_blocks.pop(peer.ledger.height + 1))
        return True
