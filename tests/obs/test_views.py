"""The attribute-view layer: seed-era stat APIs over registry counters."""

from repro.obs import MetricsRegistry, ObsView, metric_attr


class DemoStats(ObsView):
    hits = metric_attr("demo.hits")
    misses = metric_attr("demo.misses")


def test_standalone_view_has_private_registry():
    stats = DemoStats()
    assert stats.hits == 0
    stats.hits += 1
    stats.hits += 1
    stats.misses = 5
    assert stats.hits == 2
    assert stats.misses == 5


def test_shared_registry_sees_every_increment():
    registry = MetricsRegistry()
    stats = DemoStats(registry=registry, peer="p3")
    stats.hits += 3
    counter = registry.counter("demo.hits", peer="p3")
    assert counter.value == 3
    # ... and writes through the registry show up in the view.
    counter.inc(2)
    assert stats.hits == 5


def test_label_isolation_between_views():
    registry = MetricsRegistry()
    a = DemoStats(registry=registry, peer="a")
    b = DemoStats(registry=registry, peer="b")
    a.hits += 1
    assert b.hits == 0
    assert registry.total("demo.hits") == 1


def test_empty_labels_are_dropped():
    stats = DemoStats(peer="")
    assert stats.labels == {}
