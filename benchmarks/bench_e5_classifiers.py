"""E5 — the AI text-detection component + the 72.3% workload calibration.

Workload: train/test corpora generated with the paper's cited fake-news
composition (72.3% of fakes are modified factual news, the rest
fabricated).  Compares the classical baselines (the component the
platform plugs in as its Fig. 1 "fake text detection"): TF-IDF+LR,
counts+NB, TF-IDF+SVM, stylometric+LR, hashing+LR, and the fused
ensemble.  Also reports accuracy split by fake type — mutated fakes are
the harder class, which is exactly why the paper adds provenance.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.corpus import CorpusGenerator
from repro.ml import (
    FakeNewsScorer,
    LinearSVM,
    LogisticRegression,
    MultinomialNaiveBayes,
    StylometricExtractor,
    TfidfVectorizer,
    CountVectorizer,
    HashingVectorizer,
    classification_report,
)
from repro.ml.vectorize import ScaledVectorizer

TRAIN = (300, 300)
TEST = (150, 150)


def _data():
    train = CorpusGenerator(seed=500).labeled_corpus(*TRAIN)
    test = CorpusGenerator(seed=501).labeled_corpus(*TEST)
    return train, test


def _evaluate_all(train, test):
    train_texts, train_labels = train.texts_and_labels()
    test_texts, test_labels = test.texts_and_labels()
    y_train, y_test = np.array(train_labels), np.array(test_labels)
    results = {}
    members = [
        ("tfidf+logistic", TfidfVectorizer(max_features=4000), LogisticRegression()),
        ("counts+naive-bayes", CountVectorizer(max_features=4000), MultinomialNaiveBayes()),
        ("tfidf+linear-svm", TfidfVectorizer(max_features=4000), LinearSVM()),
        ("stylometric+logistic", ScaledVectorizer(StylometricExtractor()),
         LogisticRegression(learning_rate=0.3)),
        ("hashing+logistic", HashingVectorizer(n_features=2048), LogisticRegression()),
    ]
    for name, vectorizer, model in members:
        X_train = vectorizer.fit_transform(train_texts)
        model.fit(X_train, y_train)
        scores = model.score_fake(vectorizer.transform(test_texts))
        results[name] = (classification_report(y_test, (scores >= 0.5).astype(int), scores), scores)
    scorer = FakeNewsScorer(seed=2).fit(train_texts, y_train)
    scores = scorer.score(test_texts)
    results["ensemble (platform)"] = (
        classification_report(y_test, (scores >= 0.5).astype(int), scores), scores
    )
    return results, test, y_test


def test_e5_classifier_comparison(benchmark):
    train, test = _data()
    results, test_corpus, y_test = benchmark.pedantic(
        _evaluate_all, args=(train, test), rounds=1, iterations=1
    )
    rows = []
    for name, (report, _) in results.items():
        rows.append(report.as_row(name))
    # Per-fake-type recall for the ensemble: mutated vs fabricated.
    _, ensemble_scores = results["ensemble (platform)"]
    predictions = (ensemble_scores >= 0.5).astype(int)
    mutated_idx = [i for i, a in enumerate(test_corpus.articles)
                   if a.label_fake and not a.fabricated]
    fabricated_idx = [i for i, a in enumerate(test_corpus.articles) if a.fabricated]
    mutated_recall = float(np.mean(predictions[mutated_idx])) if mutated_idx else 0.0
    fabricated_recall = float(np.mean(predictions[fabricated_idx])) if fabricated_idx else 0.0
    rows.append(
        f"ensemble recall by fake type: mutated={mutated_recall:.3f} "
        f"({len(mutated_idx)} = 72.3% of fakes), fabricated={fabricated_recall:.3f}"
    )
    emit(benchmark, "E5 — fake-news text classifiers (72.3% mutated workload)", rows)
    assert results["ensemble (platform)"][0].auc > 0.9
    assert fabricated_recall >= mutated_recall  # mutations are the hard class
