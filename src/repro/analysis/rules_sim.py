"""SIM — wall-clock misuse inside simulated-time domains.

The blockchain, gossip network, and social cascades all run on one
discrete-event :class:`~repro.simnet.events.Simulator`; "when" always
means ``sim.now``.  A stray ``time.time()`` in those modules silently
couples ledger contents to the host's wall clock and scheduler jitter,
which is exactly the failure mode that breaks byte-for-byte reruns.

SIM001 (error)  ``time.time / monotonic / perf_counter / process_time``
                (and their ``_ns`` variants) referenced inside a
                sim-domain module.
SIM002 (error)  ``datetime.now / utcnow / today`` and ``date.today``
                inside a sim-domain module.

Domains come from :class:`~repro.analysis.core.AnalysisConfig`
(``repro.simnet``, ``repro.chain``, ``repro.social`` by default);
``repro.obs`` and ``repro.crypto.batch`` are exempt because they
deliberately measure *host* compute cost (wall time) alongside
sim-time, and benchmarks are outside the domains entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ImportMap, ModuleInfo, Rule, register

__all__ = ["WallClockRule", "WallDatetimeRule"]

_WALL_CLOCKS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
}

_WALL_DATETIMES = {
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


class _SimDomainRule(Rule):
    """Shared machinery: only fire inside configured sim-time domains."""

    banned: frozenset[str] = frozenset()
    advice = ""

    def _in_domain(self, mod: ModuleInfo) -> bool:
        name = mod.module
        if not name:
            return False
        if any(name == ex or name.startswith(ex + ".")
               for ex in self.config.sim_exempt_modules):
            return False
        return any(name == dom or name.startswith(dom + ".")
                   for dom in self.config.sim_domains)

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        if not self._in_domain(mod):
            return
        imports = ImportMap(mod.tree)
        stack: list[ast.AST] = [mod.tree]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Name, ast.Attribute)):
                dotted = imports.resolve(node)
                if dotted in self.banned:
                    yield self.finding(
                        mod, node,
                        f"`{dotted}` reads the wall clock inside sim-domain "
                        f"module {mod.module}; {self.advice}",
                    )
                    continue
            stack.extend(ast.iter_child_nodes(node))


@register
class WallClockRule(_SimDomainRule):
    rule_id = "SIM001"
    severity = "error"
    summary = "time.* wall clock inside a sim-time domain"
    banned = frozenset(_WALL_CLOCKS)
    advice = "use the Simulator's sim-time (`sim.now`) instead"


@register
class WallDatetimeRule(_SimDomainRule):
    rule_id = "SIM002"
    severity = "error"
    summary = "datetime.now/utcnow/today inside a sim-time domain"
    banned = frozenset(_WALL_DATETIMES)
    advice = "derive timestamps from sim-time, not the host calendar"
