"""Stylometric features: the social/humanistic signals the paper's
"fake text detection component" (§IV) looks for.

Fake news — per the paper's framing and its OpenSources reference [41] —
carries negative-emotion vocabulary, clickbait framing, hedged
attribution, and weaker sourcing than standard factual news.  This
module measures exactly those registers (against the same lexicons the
corpus generator draws from) plus register-free shape statistics, and
wraps them in a classifier-compatible extractor.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.lexicon import (
    CLICKBAIT_PHRASES,
    EMOTIONAL_WORDS,
    HEDGE_WORDS,
    NEUTRAL_VERBS,
    REPORTING_VERBS,
    tokenize,
)

__all__ = ["StylometricExtractor", "FEATURE_NAMES"]

FEATURE_NAMES = (
    "emotional_rate",
    "clickbait_hits",
    "hedge_rate",
    "attribution_rate",
    "neutral_verb_rate",
    "numeric_density",
    "type_token_ratio",
    "mean_sentence_length",
    "sentence_length_cv",
    "second_person_rate",
)

_EMOTIONAL = frozenset(EMOTIONAL_WORDS)
_HEDGE_TOKENS = frozenset(
    token for phrase in HEDGE_WORDS for token in tokenize(phrase)
)
_REPORTING_TOKENS = frozenset(
    token for phrase in REPORTING_VERBS for token in tokenize(phrase)
)
_NEUTRAL = frozenset(NEUTRAL_VERBS)
_SECOND_PERSON = frozenset({"you", "your", "yours"})


class StylometricExtractor:
    """Turns raw text into the 10-dimensional stylometric vector.

    Stateless (no fit needed); ``fit``/``fit_transform`` exist so it
    slots into the same pipelines as the vectorizers.
    """

    def transform(self, texts: list[str]) -> np.ndarray:
        return np.array([self._features(text) for text in texts], dtype=np.float64)

    def fit(self, texts: list[str]) -> "StylometricExtractor":
        return self

    def fit_transform(self, texts: list[str]) -> np.ndarray:
        return self.transform(texts)

    def _features(self, text: str) -> list[float]:
        tokens = tokenize(text)
        n = max(1, len(tokens))
        lower = text.lower()
        sentences = [s for s in lower.split(".") if s.strip()]
        lengths = np.array([len(tokenize(s)) for s in sentences] or [0], dtype=np.float64)
        mean_len = float(lengths.mean())
        cv = float(lengths.std() / mean_len) if mean_len > 0 else 0.0
        return [
            sum(1 for t in tokens if t in _EMOTIONAL) / n,
            float(sum(lower.count(phrase) for phrase in CLICKBAIT_PHRASES)),
            sum(1 for t in tokens if t in _HEDGE_TOKENS) / n,
            sum(1 for t in tokens if t in _REPORTING_TOKENS) / n,
            sum(1 for t in tokens if t in _NEUTRAL) / n,
            sum(1 for t in tokens if t.isdigit()) / n,
            len(set(tokens)) / n,
            mean_len,
            cv,
            sum(1 for t in tokens if t in _SECOND_PERSON) / n,
        ]
