"""The durable backend: write-ahead block log + periodic snapshots.

Commit path (:meth:`DurableStore.on_commit`): the block, its validity
verdicts, its per-tx error strings, and its consensus proof are encoded
into one record, appended to the log, and fsync'd — only then is the
block *acknowledged durable* and remembered in :attr:`DurableStore.acked`
(the model's ground truth for the storage-durability invariant; it is
never used to rebuild state).  Every ``snapshot_interval`` blocks,
:meth:`maybe_snapshot` persists the world state, receipts, and ledger
indexes.

Recovery (:meth:`recover`) is verify-before-trust, and it *degrades*,
never guesses::

    scan log        -> trust only the CRC-valid, height-contiguous prefix;
                       a torn tail or corrupt record truncates the log
    pick snapshot   -> newest valid snapshot at height <= log tip; a
                       corrupt snapshot falls back to the previous one,
                       and with none left, to full replay
    decode tail     -> every record above the snapshot is decoded,
                       structure-verified, linkage-checked, and (when a
                       proof was stored) checked against the engine's
                       commit-certificate rule; a failure truncates the
                       log there and restarts the ladder
    reconcile       -> every block acked durable before the crash must
                       come back; ones that cannot are reported in
                       ``missing_acked`` with a matching degradation

Every step down the ladder increments ``store.degradations`` (labelled
by kind) and is listed in the :class:`~repro.chain.store.base.
RecoveryReport` that ``repro-news store`` renders and the invariant
auditor cross-checks.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Callable

from repro.chain.block import Block, make_genesis_block
from repro.chain.ledger import Ledger
from repro.chain.state import WorldState
from repro.chain.store.base import BlockStore, Degradation, RecoveredChain, RecoveryReport
from repro.chain.store.codec import (
    decode_record,
    encode_record,
    receipt_from_obj,
    receipt_to_obj,
)
from repro.chain.store.log import BlockLog, LogRecord
from repro.chain.store.snapshots import (
    SnapshotCandidate,
    list_snapshots,
    load_snapshot,
    write_snapshot,
)
from repro.chain.transaction import TxReceipt
from repro.errors import InvalidBlockError
from repro.obs import MetricsRegistry
from repro.simnet.disk import SimDisk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.consensus.base import ConsensusEngine

__all__ = ["DurableStore"]


class _TailCorruption(Exception):
    """A decoded record failed verification; carries where and why."""

    def __init__(self, kind: str, height: int, detail: str):
        super().__init__(f"{kind} at height {height}: {detail}")
        self.kind = kind
        self.height = height
        self.detail = detail


class _SnapshotRejected(Exception):
    """The snapshot disagrees with the verified log; try the next one."""


class DurableStore(BlockStore):
    """Append-only log + snapshots over a fault-injectable SimDisk."""

    kind = "durable"

    def __init__(
        self,
        disk: SimDisk | None = None,
        node_id: str = "",
        snapshot_interval: int = 64,
        keep_snapshots: int = 2,
    ):
        if keep_snapshots < 1:
            # keep=0 used to slip through to write_snapshot's [:-keep]
            # prune slice, which is empty for keep <= 0: "keep none"
            # silently became "keep everything".
            raise ValueError(f"keep_snapshots must be >= 1, got {keep_snapshots}")
        self.disk = disk if disk is not None else SimDisk(node_id)
        self.log = BlockLog(self.disk)
        self.snapshot_interval = snapshot_interval
        self.keep_snapshots = keep_snapshots
        #: height -> (block_hash, payload crc32): what this store promised
        #: to keep.  Ground truth for the durability audit, never an input
        #: to recovery.
        self.acked: dict[int, tuple[str, int]] = {}
        self.last_snapshot_height = 0
        self.last_recovery: RecoveryReport | None = None
        self.reports: list[RecoveryReport] = []
        self._obs = MetricsRegistry()
        self._labels: dict[str, str] = {}

    def attach(self, registry: MetricsRegistry, node_id: str) -> None:
        self._obs = registry
        self._labels = {"peer": node_id}

    def _count(self, name: str, n: float = 1, **extra: str) -> None:
        self._obs.counter(name, **self._labels, **extra).inc(n)

    # -- commit path -------------------------------------------------------

    def on_commit(
        self,
        block: Block,
        validity: list[bool],
        proof: Any = None,
        errors: list[str | None] | None = None,
    ) -> bool:
        payload = encode_record(block, validity, errors, proof)
        self.log.append(block.height, payload)
        self.acked[block.height] = (block.block_hash, zlib.crc32(payload))
        self._count("store.blocks_logged")
        self._count("store.log_bytes", len(payload))
        return True

    def maybe_snapshot(
        self, ledger: Ledger, state: WorldState, receipts: dict[str, TxReceipt]
    ) -> bool:
        height = ledger.height
        if height == 0 or height - self.last_snapshot_height < self.snapshot_interval:
            return False
        written = self._write_snapshot(ledger, state, receipts)
        self.last_snapshot_height = height
        self._count("store.snapshots_written")
        self._count("store.snapshot_bytes", written)
        return True

    # -- snapshot media (overridable: SQLiteStore swaps the file format) ---

    def _write_snapshot(
        self, ledger: Ledger, state: WorldState, receipts: dict[str, TxReceipt]
    ) -> int:
        """Persist one snapshot of *ledger*'s current height; returns bytes
        written.  Subclasses may store a different on-disk format as long
        as :meth:`_load_snapshot` returns the canonical snapshot object."""
        receipt_objs = [receipt_to_obj(receipts[tx_id]) for tx_id in sorted(receipts)]
        return write_snapshot(
            self.disk,
            ledger.height,
            ledger.head.block_hash,
            state.dump(),
            receipt_objs,
            ledger.index_dump(),
            keep=self.keep_snapshots,
        )

    def _snapshot_candidates(self) -> list[SnapshotCandidate]:
        """Durable snapshot artifacts, oldest first (unverified)."""
        return list_snapshots(self.disk)

    def _load_snapshot(self, candidate: SnapshotCandidate) -> dict[str, Any] | None:
        """Verify-before-trust load of one candidate; ``None`` on any
        failure (the ladder counts it as ``snapshot-corrupt`` and moves
        on).  Must return a dict with ``height``/``block_hash``/``state``/
        ``receipts``/``indexes`` keys — the shape :meth:`_assemble` eats."""
        return load_snapshot(self.disk, candidate)

    def _discard_snapshot(self, candidate: SnapshotCandidate) -> None:
        """Drop a candidate that failed verification or contradicted the
        log, so the next recovery doesn't retry it."""
        self.disk.delete(candidate.name)

    # -- recovery ----------------------------------------------------------

    def recover(self, engine: "ConsensusEngine | None" = None) -> RecoveredChain | None:
        report = RecoveryReport()
        self._count("store.recoveries")

        def degrade(kind: str, detail: str, height: int | None = None) -> None:
            report.degradations.append(Degradation(kind=kind, detail=detail, height=height))
            self._count("store.degradations", kind=kind)

        scan = self.log.scan()
        if scan.failure is not None:
            cut = scan.total_length - scan.valid_length
            report.truncated_bytes += cut
            degrade(scan.failure, f"log tail truncated ({cut} bytes dropped)", scan.tip + 1)
            self.log.truncate(scan.valid_length)
        records = list(scan.records)

        recovered: RecoveredChain | None = None
        while recovered is None:
            tip = records[-1].height if records else 0
            candidates = [c for c in self._snapshot_candidates() if 1 <= c.height <= tip]
            plans: list[Any] = list(reversed(candidates)) + [None]
            corruption: _TailCorruption | None = None
            for candidate in plans:
                snap_obj = None
                if candidate is not None:
                    snap_obj = self._load_snapshot(candidate)
                    if snap_obj is None:
                        degrade(
                            "snapshot-corrupt",
                            f"snapshot at height {candidate.height} failed verification",
                            candidate.height,
                        )
                        self._discard_snapshot(candidate)
                        continue
                try:
                    recovered = self._assemble(records, snap_obj, engine, report)
                    break
                except _SnapshotRejected:
                    degrade(
                        "snapshot-mismatch",
                        f"snapshot at height {candidate.height} disagrees with the log",
                        candidate.height,
                    )
                    self._discard_snapshot(candidate)
                    continue
                except _TailCorruption as exc:
                    corruption = exc
                    break
            if recovered is not None:
                break
            if corruption is None:
                # Every plan ends in full replay, which only fails via
                # _TailCorruption — reaching here means zero records and
                # zero snapshots: an empty chain.
                recovered = self._assemble([], None, engine, report)
                break
            bad = next(r for r in records if r.height == corruption.height)
            cut = self.disk.size(self.log.name) - bad.offset
            report.truncated_bytes += cut
            degrade(corruption.kind, corruption.detail, corruption.height)
            self.log.truncate(bad.offset)
            records = [r for r in records if r.height < corruption.height]

        self._reconcile_acked(records, report)
        if report.missing_acked:
            # A lying drive (partial flush) shortens the log *cleanly*,
            # so the scan alone cannot see the loss — only the acked map
            # can.  Record it as its own degradation so no acknowledged
            # write ever vanishes uncounted.
            heights = sorted(report.missing_acked)
            degrade(
                "acked-rollback",
                f"{len(heights)} acknowledged block(s) "
                f"{heights[0]}..{heights[-1]} did not survive recovery",
                heights[0],
            )
        self.last_snapshot_height = report.snapshot_height
        self.last_recovery = report
        self.reports.append(report)
        self._count("store.recovered_blocks", report.recovered_height)
        if report.missing_acked:
            self._count("store.missing_acked", len(report.missing_acked))
        if report.unproven_records:
            self._count("store.unproven_records", report.unproven_records)
        return recovered

    def _assemble(
        self,
        records: list[LogRecord],
        snap_obj: dict[str, Any] | None,
        engine: "ConsensusEngine | None",
        report: RecoveryReport,
    ) -> RecoveredChain:
        """Build (ledger, state, receipts) from the verified log prefix
        and an optional already-CRC-valid snapshot.  Raises
        :class:`_TailCorruption` if a record above the snapshot fails
        verification, :class:`_SnapshotRejected` if the snapshot itself
        contradicts the log."""
        tip = records[-1].height if records else 0
        snap_height = snap_obj["height"] if snap_obj is not None else 0
        tail = [r for r in records if r.height >= max(1, snap_height)]

        decoded: list[tuple[Block, list[bool], list[str | None], Any]] = []
        unproven = 0
        for record in tail:
            try:
                block, validity, errors, proof = decode_record(record.payload)
            except (ValueError, KeyError, TypeError) as exc:
                raise _TailCorruption("decode-error", record.height, str(exc)) from exc
            if block.height != record.height:
                raise _TailCorruption(
                    "height-mismatch", record.height,
                    f"record framed as {record.height} decodes to block {block.height}",
                )
            try:
                block.verify_structure()
            except InvalidBlockError as exc:
                raise _TailCorruption("structure-invalid", record.height, str(exc)) from exc
            if proof is not None and engine is not None:
                if not engine.verify_synced_block(block, proof):
                    raise _TailCorruption(
                        "certificate-invalid", record.height,
                        "stored commit certificate failed verification",
                    )
            elif proof is None:
                unproven += 1
            decoded.append((block, validity, errors, proof))

        # Linkage: snapshot anchor, then hash-chain through the tail.
        prev: Block | None = None
        for block, _, _, _ in decoded:
            if prev is None:
                if snap_obj is not None:
                    if block.height == snap_height and block.block_hash != snap_obj["block_hash"]:
                        raise _SnapshotRejected()
                elif block.prev_hash != make_genesis_block().block_hash:
                    raise _TailCorruption(
                        "linkage-broken", block.height,
                        "first record does not extend genesis",
                    )
            elif block.prev_hash != prev.block_hash:
                raise _TailCorruption(
                    "linkage-broken", block.height,
                    f"prev_hash does not match block {prev.height}",
                )
            prev = block

        # All checks passed: assemble.  Mutations only start here, so a
        # ladder retry never sees a half-built chain.
        if snap_obj is not None:
            state = WorldState.from_dump(snap_obj["state"])
            receipts = {
                obj["tx_id"]: receipt_from_obj(obj) for obj in snap_obj["receipts"]
            }
            anchor = decoded[0][0]  # block at snap_height, verified above
            ledger = Ledger.from_recovery(
                window=[anchor],
                base=snap_height,
                indexes=snap_obj["indexes"],
                archive=self._archive_fn(records, snap_height),
            )
            to_apply = decoded[1:]
        else:
            state = WorldState()
            receipts = {}
            ledger = Ledger()
            to_apply = decoded

        proofs: dict[int, Any] = {b.height: p for b, _, _, p in decoded}
        for block, validity, errors, _ in to_apply:
            ledger.append(block, validity)
            for index, tx in enumerate(block.transactions):
                verdict = validity[index]
                if verdict:
                    state.apply_write_set(tx.write_set)
                receipt = TxReceipt(
                    tx_id=tx.tx_id,
                    block_height=block.height,
                    success=verdict,
                    return_value=tx.return_value if verdict else None,
                    events=tx.events if verdict else (),
                    error=errors[index],
                )
                existing = receipts.get(tx.tx_id)
                if existing is None or verdict or not existing.success:
                    # Same no-downgrade rule as the live commit path.
                    receipts[tx.tx_id] = receipt

        report.mode = (
            "snapshot+tail" if snap_obj is not None
            else ("full-replay" if records else "empty")
        )
        report.recovered_height = tip
        report.snapshot_height = snap_height
        report.log_records = len(records)
        report.tail_records = len(decoded)
        report.unproven_records = unproven
        return RecoveredChain(
            ledger=ledger, state=state, receipts=receipts, proofs=proofs, report=report
        )

    def _archive_fn(
        self, records: list[LogRecord], snap_height: int
    ) -> Callable[[int], Block]:
        """Lazy loader for blocks below the snapshot: served straight from
        the scan-verified log records, decoded on demand (the recovered
        ledger keeps a bounded cache on top)."""
        by_height = {r.height: r for r in records if r.height < snap_height}

        def load(height: int) -> Block:
            if height == 0:
                return make_genesis_block()
            record = by_height[height]
            self._count("store.archive_loads")
            block, _, _, _ = decode_record(record.payload)
            return block

        return load

    def _reconcile_acked(self, records: list[LogRecord], report: RecoveryReport) -> None:
        """Compare what came back against what was acknowledged durable."""
        by_height = {r.height: r for r in records}
        survivors: dict[int, tuple[str, int]] = {}
        for height, (block_hash, crc) in sorted(self.acked.items()):
            record = by_height.get(height)
            if record is None:
                report.missing_acked[height] = "record lost from log"
            elif record.crc != crc:
                report.missing_acked[height] = "record bytes differ from acknowledged write"
            else:
                survivors[height] = (block_hash, crc)
        self.acked = survivors
