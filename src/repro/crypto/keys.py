"""Key pairs and account addresses for blockchain participants.

A :class:`KeyPair` wraps an Ed25519 seed and exposes signing; the public
key hashed with SHA-256 yields the account *address* used throughout the
ledger.  Key generation is deterministic when given a ``random.Random``
so whole experiments can be replayed from one seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto import ed25519
from repro.crypto.hashing import sha256_hex
from repro.errors import CryptoError

__all__ = ["KeyPair", "address_from_public_key", "verify_signature"]

_ADDRESS_PREFIX = "acct:"


def address_from_public_key(public_key: bytes) -> str:
    """Derive the ledger address for a public key.

    Addresses are ``acct:`` plus the first 40 hex chars of the SHA-256 of
    the public key — short enough to read in logs, long enough that
    collisions are not a concern at simulation scale.
    """
    return _ADDRESS_PREFIX + sha256_hex(public_key)[:40]


@dataclass(frozen=True)
class KeyPair:
    """An Ed25519 key pair plus its derived ledger address."""

    seed: bytes = field(repr=False)
    public_key: bytes
    address: str

    @classmethod
    def generate(cls, rng: random.Random) -> "KeyPair":
        """Create a fresh key pair from the caller's seeded *rng*.

        The rng is required on purpose: an implicit OS-entropy fallback
        would let one forgotten argument silently break the bit-identical
        reruns every experiment depends on (DESIGN.md §6).  Callers that
        genuinely want unreproducible keys can pass
        ``random.SystemRandom()`` explicitly.
        """
        if rng is None:
            raise CryptoError(
                "KeyPair.generate requires a seeded random.Random; "
                "implicit OS entropy would break run reproducibility"
            )
        seed = rng.getrandbits(256).to_bytes(32, "little")
        return cls.from_seed(seed)

    @classmethod
    def from_seed(cls, seed: bytes) -> "KeyPair":
        if len(seed) != ed25519.SEED_BYTES:
            raise CryptoError("seed must be 32 bytes")
        public = ed25519.generate_public_key(seed)
        return cls(seed=seed, public_key=public, address=address_from_public_key(public))

    def sign(self, message: bytes) -> bytes:
        """Sign *message*, returning the 64-byte signature."""
        return ed25519.sign(self.seed, message)

    def verify(self, message: bytes, signature: bytes) -> bool:
        return ed25519.verify(self.public_key, message, signature)


def verify_signature(public_key: bytes, message: bytes, signature: bytes) -> bool:
    """Module-level convenience mirroring :meth:`KeyPair.verify`."""
    return ed25519.verify(public_key, message, signature)
