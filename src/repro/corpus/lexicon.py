"""Word banks for the synthetic news corpus.

The corpus generator composes articles from these banks.  The split into
*neutral reporting* language versus *emotional / clickbait* language is
the lever the paper's cited statistic turns on: fake news wraps intent
"into the prepared standard factual news ... using the words of negative
emotions" (§I, citing [11-13]).  The stylometric detector in
:mod:`repro.ml.features` counts exactly these banks, which mirrors how
lexicon-based fake-news features work on real data (e.g. OpenSources'
aesthetic/social analysis, ref [41]).
"""

from __future__ import annotations

import re

__all__ = [
    "NEUTRAL_VERBS",
    "REPORTING_VERBS",
    "EMOTIONAL_WORDS",
    "CLICKBAIT_PHRASES",
    "HEDGE_WORDS",
    "CONNECTIVES",
    "tokenize",
]

# Verbs for neutral factual statements.
NEUTRAL_VERBS = [
    "announced", "published", "approved", "released", "presented", "confirmed",
    "signed", "proposed", "introduced", "completed", "opened", "reviewed",
    "scheduled", "measured", "recorded", "reported", "adopted", "funded",
    "launched", "concluded", "expanded", "submitted", "audited", "ratified",
]

# Attribution verbs used when citing a source.
REPORTING_VERBS = [
    "said", "stated", "noted", "added", "explained", "testified",
    "according to", "told reporters", "wrote", "commented",
]

# Negative-emotion / sensational vocabulary injected by fake mutations.
EMOTIONAL_WORDS = [
    "shocking", "outrageous", "disaster", "catastrophe", "scandal", "corrupt",
    "betrayal", "horrifying", "devastating", "furious", "disgraceful", "chaos",
    "terrifying", "explosive", "sinister", "treasonous", "nightmare", "crisis",
    "collapse", "conspiracy", "coverup", "rigged", "fraudulent", "alarming",
    "destroyed", "slammed", "blasted", "humiliated", "exposed", "panic",
]

# Clickbait framings prepended/injected by fake mutations.
CLICKBAIT_PHRASES = [
    "you will not believe what happened next",
    "the truth they do not want you to know",
    "this changes everything",
    "share before it gets deleted",
    "mainstream media will not report this",
    "insiders reveal the real story",
    "what happens next will shock you",
    "the one fact everyone is hiding",
]

# Hedging language characteristic of rumor-mill sources.
HEDGE_WORDS = [
    "allegedly", "reportedly", "supposedly", "rumored", "unconfirmed",
    "sources say", "some claim", "many people are saying", "apparently",
]

# Neutral connectives used to stitch sentences.
CONNECTIVES = [
    "meanwhile", "in addition", "furthermore", "separately", "earlier",
    "later that day", "in a statement", "during the session",
]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercase word tokenizer shared by the corpus and ML layers.

    Splits on anything that is not ``[a-z0-9]`` after lowercasing, so
    punctuation and case never leak into vocabulary statistics.
    """
    return _TOKEN_RE.findall(text.lower())
