"""Parent-reference discovery: finding an article's provenance end points.

§VI: "The system will then analyze the news content searching and
discovering the parent references which the news is created [from]".
The :class:`ProvenanceIndex` holds every article the platform has seen
and, for a new text, proposes the most similar prior articles as parent
candidates.  Three strategies (ablation A1):

- ``exact``   — exact k-shingle Jaccard against every indexed article,
- ``minhash`` — MinHash sketch comparison (what a production system
  would index; trades a little recall for sublinear memory per doc),
- ``cosine``  — term-frequency cosine (order-blind).

The measured modification degree between child and discovered parents
is what gets recorded on-chain and later drives ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.mutations import measured_change
from repro.corpus.similarity import (
    MinHashSignature,
    cosine_similarity,
    estimated_jaccard,
    jaccard,
    minhash_signature,
    shingles,
)
from repro.errors import ReproError

__all__ = ["ParentCandidate", "ProvenanceIndex"]


@dataclass(frozen=True)
class ParentCandidate:
    """A discovered potential parent and its similarity to the child."""

    article_id: str
    similarity: float


class ProvenanceIndex:
    """Similarity index over all content the platform has ingested."""

    def __init__(self, method: str = "minhash", shingle_k: int = 3, n_hashes: int = 64):
        if method not in ("exact", "minhash", "cosine"):
            raise ReproError(f"unknown provenance method {method!r}")
        self.method = method
        self.shingle_k = shingle_k
        self.n_hashes = n_hashes
        self._texts: dict[str, str] = {}
        self._shingles: dict[str, set[str]] = {}
        self._signatures: dict[str, MinHashSignature] = {}

    def __len__(self) -> int:
        return len(self._texts)

    def __contains__(self, article_id: str) -> bool:
        return article_id in self._texts

    def add(self, article_id: str, text: str) -> None:
        """Index an article (id must be new)."""
        if article_id in self._texts:
            raise ReproError(f"article {article_id} already indexed")
        self._texts[article_id] = text
        if self.method in ("exact", "minhash"):
            sh = shingles(text, self.shingle_k)
            self._shingles[article_id] = sh
            if self.method == "minhash":
                self._signatures[article_id] = minhash_signature(sh, self.n_hashes)

    def _similarity(self, text: str, query_shingles: set[str],
                    query_signature: MinHashSignature | None, candidate_id: str) -> float:
        if self.method == "exact":
            return jaccard(query_shingles, self._shingles[candidate_id])
        if self.method == "minhash":
            assert query_signature is not None
            return estimated_jaccard(query_signature, self._signatures[candidate_id])
        return cosine_similarity(text, self._texts[candidate_id])

    def discover_parents(
        self,
        text: str,
        threshold: float = 0.15,
        max_parents: int = 2,
        exclude: str | None = None,
    ) -> list[ParentCandidate]:
        """Most similar indexed articles above *threshold*, best first."""
        query_shingles = shingles(text, self.shingle_k) if self.method != "cosine" else set()
        query_signature = (
            minhash_signature(query_shingles, self.n_hashes) if self.method == "minhash" else None
        )
        candidates = []
        for article_id in self._texts:
            if article_id == exclude:
                continue
            similarity = self._similarity(text, query_shingles, query_signature, article_id)
            if similarity >= threshold:
                candidates.append(ParentCandidate(article_id=article_id, similarity=similarity))
        candidates.sort(key=lambda c: (-c.similarity, c.article_id))
        return candidates[:max_parents]

    def modification_degree(self, text: str, parent_ids: list[str]) -> float:
        """Measured token-level change of *text* versus its parents.

        Taken as the minimum over each single parent and the full parent
        set: a faithful relay must score ~0 even when discovery also
        surfaced a looser second candidate (the union would spuriously
        inflate its degree), while a genuine merge still benefits from
        being compared against all parents together.
        """
        parent_texts = [self._texts[pid] for pid in parent_ids if pid in self._texts]
        if not parent_texts:
            return 1.0
        candidates = [measured_change([pt], text) for pt in parent_texts]
        if len(parent_texts) > 1:
            candidates.append(measured_change(parent_texts, text))
        return min(candidates)

    def degree_between(self, text: str, article_id: str) -> float:
        """Measured change of *text* versus one specific indexed article.

        This is the per-edge weight recorded on-chain: each provenance
        edge carries the child's distance to *that* parent, so tracing
        and accountability reason about individual lineages instead of a
        blurred parent union.
        """
        if article_id not in self._texts:
            return 1.0
        return measured_change([self._texts[article_id]], text)

    def text_of(self, article_id: str) -> str:
        return self._texts[article_id]
