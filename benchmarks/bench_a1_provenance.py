"""A1 — ablation: parent-reference discovery method.

Workload: 300 indexed articles; 150 queries that are derivations
(relays, quotes, malicious mutations) of known parents.  For each
strategy (exact shingle Jaccard, MinHash sketch, term cosine) reports
recall@1 / recall@2 of the true parent plus per-query latency — the
cost/recall trade a production deployment would choose from.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit
from repro.core import ProvenanceIndex
from repro.corpus import CorpusGenerator

N_INDEXED = 300
N_QUERIES = 150


def _dataset():
    gen = CorpusGenerator(seed=1300)
    originals = [gen.factual() for _ in range(N_INDEXED)]
    queries = []
    for index in range(N_QUERIES):
        parent = originals[index % N_INDEXED]
        roll = index % 3
        if roll == 0:
            child = gen.relay_derivation(parent, "q", 1.0)
        elif roll == 1:
            child = gen.benign_derivation(parent, "q", 1.0)
        else:
            child = gen.malicious_derivation(parent, "q", 1.0)
        queries.append((child.text, parent.article_id))
    return originals, queries


def _evaluate(originals, queries):
    results = {}
    for method in ("exact", "minhash", "cosine"):
        index = ProvenanceIndex(method=method)
        for article in originals:
            index.add(article.article_id, article.text)
        hit_at_1 = hit_at_2 = 0
        start = time.perf_counter()
        for text, true_parent in queries:
            candidates = index.discover_parents(text, threshold=0.05, max_parents=2)
            found = [c.article_id for c in candidates]
            if found and found[0] == true_parent:
                hit_at_1 += 1
            if true_parent in found:
                hit_at_2 += 1
        per_query_ms = 1000 * (time.perf_counter() - start) / len(queries)
        results[method] = (hit_at_1 / len(queries), hit_at_2 / len(queries), per_query_ms)
    return results


def test_a1_provenance_methods(benchmark):
    originals, queries = _dataset()
    results = benchmark.pedantic(_evaluate, args=(originals, queries), rounds=1, iterations=1)
    rows = [f"{'method':<8} {'recall@1':>9} {'recall@2':>9} {'ms/query':>9}"]
    for method, (recall1, recall2, latency) in results.items():
        rows.append(f"{method:<8} {recall1:>9.2f} {recall2:>9.2f} {latency:>9.2f}")
    rows.append(f"(index size {N_INDEXED}; queries are 1/3 relays, 1/3 benign "
                f"derivations, 1/3 malicious mutations)")
    emit(benchmark, "A1 — parent discovery: exact vs MinHash vs cosine", rows)
    assert results["exact"][1] >= 0.9
    assert results["minhash"][1] >= 0.85  # sketch trades a little recall
