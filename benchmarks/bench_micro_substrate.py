"""Micro-benchmarks of the substrate hot paths.

Not a paper experiment — the engineering baseline: what one signature,
one endorsement round-trip, one LocalChain transaction, and one
provenance query cost.  pytest-benchmark runs these with real repetition
statistics (unlike the one-shot experiment benches).
"""

from __future__ import annotations

import random
import time

from benchmarks.conftest import emit
from repro.chain import LocalChain
from repro.chain.state import WorldState
from repro.core import ProvenanceIndex
from repro.corpus import CorpusGenerator
from repro.crypto import KeyPair
from repro.obs import MetricsRegistry
from tests.conftest import CounterContract


def test_micro_ed25519_sign(benchmark):
    keypair = KeyPair.generate(random.Random(1))
    benchmark(keypair.sign, b"the quick brown fox")


def test_micro_ed25519_verify(benchmark):
    keypair = KeyPair.generate(random.Random(2))
    message = b"the quick brown fox"
    signature = keypair.sign(message)

    def verify_uncached():
        # Vary the message so the verification cache cannot short-circuit.
        verify_uncached.counter += 1
        payload = message + str(verify_uncached.counter).encode()
        return keypair.verify(payload, keypair.sign(payload))

    verify_uncached.counter = 0
    benchmark(verify_uncached)


def test_micro_localchain_invoke(benchmark):
    chain = LocalChain(seed=3)
    chain.install_contract(CounterContract())
    account = chain.new_account()

    def one_tx():
        chain.invoke(account, "counter", "increment")

    benchmark(one_tx)
    assert chain.ledger.height > 0


def test_micro_provenance_query(benchmark):
    gen = CorpusGenerator(seed=4)
    index = ProvenanceIndex(method="exact")
    for _ in range(200):
        article = gen.factual()
        index.add(article.article_id, article.text)
    query = gen.relay_derivation(gen.factual(), "q", 0.0)
    benchmark(index.discover_parents, query.text)


def test_micro_corpus_article(benchmark):
    gen = CorpusGenerator(seed=5)
    benchmark(gen.factual)


def test_micro_prefix_scan(benchmark):
    """Regression guard for the sorted-key prefix index.

    The seed implementation sorted every key on every scan —
    O(n log n) per query.  The index answers in O(log n + k); this
    measures both on the same 20k-key state and records the
    distributions in an obs registry so the speedup is part of the
    perf record, not just an eyeballed number.
    """
    state = WorldState()
    state.apply_write_set(
        {f"bucket{i % 40}/item-{i:06d}": {"i": i} for i in range(20_000)}
    )
    prefix = "bucket7/"

    def indexed_scan():
        return list(state.keys_with_prefix(prefix))

    def seed_scan():  # what keys_with_prefix did before the index
        return sorted(k for k in state._store if k.startswith(prefix))

    assert indexed_scan() == seed_scan()

    registry = MetricsRegistry()
    for name, scan in (("indexed", indexed_scan), ("full_sort", seed_scan)):
        hist = registry.histogram("micro.prefix_scan_us", impl=name)
        for _ in range(50):
            start = time.perf_counter()
            scan()
            hist.observe((time.perf_counter() - start) * 1e6)

    indexed = registry.histogram("micro.prefix_scan_us", impl="indexed").summary()
    full = registry.histogram("micro.prefix_scan_us", impl="full_sort").summary()
    speedup = full["p50"] / max(indexed["p50"], 1e-9)
    emit(
        None,
        "micro — prefix-scan index vs full-sort scan (20k keys)",
        [f"{'impl':<10} {'p50(us)':>9} {'p95(us)':>9}",
         f"{'indexed':<10} {indexed['p50']:>9.1f} {indexed['p95']:>9.1f}",
         f"{'full_sort':<10} {full['p50']:>9.1f} {full['p95']:>9.1f}",
         f"speedup (p50): {speedup:.1f}x"],
        metrics={"indexed_p50_us": indexed["p50"], "full_sort_p50_us": full["p50"],
                 "speedup_p50": speedup},
    )
    assert speedup > 2  # the index must beat re-sorting decisively
    benchmark(indexed_scan)
