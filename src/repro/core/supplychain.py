"""The news blockchain supply-chain graph — contribution (2), Fig. 4.

Every piece of news entering the platform becomes a node recorded by a
blockchain transaction whose second end point is its discovered parent
reference(s) (§VI).  The committed ledger then *is* the supply chain:
this module rebuilds the graph from ledger events and answers the
paper's central queries —

- can this article be traced back to the factual database?
- along the best path, how far is it and how much modification
  accumulated?
- who created the first fake ancestor (accountability)?
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import networkx as nx

from repro.chain.contracts import Contract, ContractContext, contract_method
from repro.chain.ledger import Ledger
from repro.core.identity import identity_key

__all__ = [
    "SupplyChainContract",
    "build_supply_chain_graph",
    "TraceResult",
    "trace_to_factual_root",
    "find_original_author",
    "supply_node_key",
]


def supply_node_key(article_id: str) -> str:
    return f"scnode:{article_id}"


class SupplyChainContract(Contract):
    """Records news nodes and their parent end points on-chain."""

    name = "supplychain"

    @contract_method
    def record_node(
        self,
        ctx: ContractContext,
        article_id: str,
        content_hash: str,
        parents: list[str],
        modification_degree: float,
        topic: str,
        op: str,
        fact_roots: list[str] | None = None,
        parent_degrees: list[float] | None = None,
        fact_degrees: list[float] | None = None,
    ):
        """Record one news item and its propagation end points.

        ``parents`` are previously recorded article ids (the discovered
        parent references); ``fact_roots`` are factual-database ids the
        content was matched against.  Each provenance edge carries its
        own measured change (``parent_degrees`` / ``fact_degrees``,
        aligned with the id lists); ``modification_degree`` is the
        node-level summary (minimum over edges) used for quick ranking.
        Per-edge degrees matter: a faithful relay of a distortion is
        0 from its parent but far from the grandparent, and collapsing
        those into one number mis-attributes accountability.
        """
        caller = ctx.get(identity_key(ctx.caller))
        ctx.require(caller is not None, "unregistered identities cannot record news")
        ctx.require(0.0 <= modification_degree <= 1.0, "modification_degree must be in [0, 1]")
        fact_roots = list(fact_roots or [])
        parent_degrees = list(parent_degrees) if parent_degrees is not None else [
            modification_degree
        ] * len(parents)
        fact_degrees = list(fact_degrees) if fact_degrees is not None else [
            modification_degree
        ] * len(fact_roots)
        ctx.require(len(parent_degrees) == len(parents), "parent_degrees misaligned with parents")
        ctx.require(len(fact_degrees) == len(fact_roots), "fact_degrees misaligned with fact_roots")
        ctx.require(
            all(0.0 <= d <= 1.0 for d in parent_degrees + fact_degrees),
            "edge degrees must be in [0, 1]",
        )
        key = supply_node_key(article_id)
        ctx.require(ctx.get(key) is None, f"article {article_id} already recorded")
        for parent in parents:
            ctx.require(
                ctx.get(supply_node_key(parent)) is not None,
                f"parent {parent} is not recorded in the supply chain",
            )
        record = {
            "article_id": article_id,
            "author": ctx.caller,
            "content_hash": content_hash,
            "parents": list(parents),
            "parent_degrees": parent_degrees,
            "modification_degree": modification_degree,
            "topic": topic,
            "op": op,
            "fact_roots": fact_roots,
            "fact_degrees": fact_degrees,
            "recorded_at": ctx.timestamp,
        }
        ctx.put(key, record)
        ctx.emit(
            "supply-node-recorded",
            article_id=article_id,
            parents=list(parents),
            parent_degrees=parent_degrees,
            modification_degree=modification_degree,
            topic=topic,
            op=op,
            fact_roots=fact_roots,
            fact_degrees=fact_degrees,
        )
        return record

    @contract_method
    def get_node(self, ctx: ContractContext, article_id: str):
        return ctx.get(supply_node_key(article_id))

    @contract_method
    def record_ranking(
        self,
        ctx: ContractContext,
        article_id: str,
        provenance_score: float | None,
        ai_score: float | None,
        crowd_score: float | None,
        final_score: float,
    ):
        """Publish an article's ranking verdict to the ledger.

        The verdict (and each component signal) is auditable: readers
        can see *why* an article ranks where it does, the transparency
        mechanism refs [29] argue for.
        """
        ctx.require(
            ctx.get(supply_node_key(article_id)) is not None,
            f"article {article_id} is not recorded in the supply chain",
        )
        ctx.require(0.0 <= final_score <= 1.0, "final_score must be in [0, 1]")
        record = {
            "article_id": article_id,
            "provenance_score": provenance_score,
            "ai_score": ai_score,
            "crowd_score": crowd_score,
            "final_score": final_score,
            "ranked_by": ctx.caller,
            "ranked_at": ctx.timestamp,
        }
        ctx.put(f"scrank:{article_id}", record)
        ctx.emit("article-ranked", article_id=article_id, final_score=final_score)
        return record

    @contract_method
    def get_ranking(self, ctx: ContractContext, article_id: str):
        return ctx.get(f"scrank:{article_id}")


def build_supply_chain_graph(ledger: Ledger) -> nx.DiGraph:
    """Reconstruct the Fig. 4 graph from committed ledger events.

    Nodes are article ids (plus ``fact:<id>`` nodes for factual-database
    roots); a directed edge child -> parent points *toward provenance*.
    Node attributes carry author, op, modification degree, topic, and
    recording time, so every downstream analysis (ranking, experts,
    accountability) works from the same reconstruction.
    """
    graph = nx.DiGraph()
    for event in ledger.events(contract="supplychain", kind="supply-node-recorded"):
        article_id = event["article_id"]
        graph.add_node(
            article_id,
            author=event["_sender"],
            op=event["op"],
            topic=event["topic"],
            modification_degree=event["modification_degree"],
            recorded_at=event["_height"],
            is_fact_root=False,
        )
        parent_degrees = event.get("parent_degrees") or [event["modification_degree"]] * len(
            event["parents"]
        )
        for parent, degree in zip(event["parents"], parent_degrees):
            graph.add_edge(article_id, parent, weight=degree)
        fact_degrees = event.get("fact_degrees") or [event["modification_degree"]] * len(
            event["fact_roots"]
        )
        for fact_id, degree in zip(event["fact_roots"], fact_degrees):
            fact_node = f"fact:{fact_id}"
            if fact_node not in graph:
                graph.add_node(fact_node, is_fact_root=True, op="fact", author="factualdb",
                               topic=event["topic"], modification_degree=0.0)
            graph.add_edge(article_id, fact_node, weight=degree)
    return graph


@dataclass
class TraceResult:
    """Outcome of tracing one article toward the factual database."""

    article_id: str
    traceable: bool
    root: str | None = None
    path: list[str] = field(default_factory=list)
    hops: int = 0
    cumulative_modification: float = 0.0

    @property
    def provenance_score(self) -> float:
        """[0, 1] score: 1 at a factual root, decaying with accumulated
        modification; untraceable articles get 0."""
        if not self.traceable:
            return 0.0
        return max(0.0, 1.0 - self.cumulative_modification)


def trace_to_factual_root(graph: nx.DiGraph, article_id: str) -> TraceResult:
    """Find the minimum-accumulated-modification path to any factual root.

    Dijkstra over provenance edges, each weighted by the measured change
    between child and that specific parent.  Among factual roots, the
    least-modified path wins — matching §VI's "rank the news based on
    the degrees of modifications along the news propagation path".
    """
    if article_id not in graph:
        return TraceResult(article_id=article_id, traceable=False)
    # (cost, tiebreak, node, path)
    queue: list[tuple[float, int, str, list[str]]] = [(0.0, 0, article_id, [article_id])]
    best: dict[str, float] = {article_id: 0.0}
    counter = 0
    while queue:
        cost, _, node, path = heapq.heappop(queue)
        if cost > best.get(node, float("inf")):
            continue
        if graph.nodes[node].get("is_fact_root"):
            return TraceResult(
                article_id=article_id,
                traceable=True,
                root=node,
                path=path,
                hops=len(path) - 1,
                cumulative_modification=min(1.0, cost),
            )
        for parent in graph.successors(node):
            step = graph.edges[node, parent].get("weight", 0.0)
            next_cost = cost + step
            if next_cost < best.get(parent, float("inf")):
                best[parent] = next_cost
                counter += 1
                heapq.heappush(queue, (next_cost, counter, parent, path + [parent]))
    return TraceResult(article_id=article_id, traceable=False)


def find_original_author(
    graph: nx.DiGraph, article_id: str, copy_epsilon: float = 0.05
) -> str | None:
    """Accountability query: who introduced the content this article carries?

    §IV: "People [who] create fake news can be easily identified and
    located for accountability."  The walk follows *faithful-copy* edges
    (weight <= ``copy_epsilon``): as long as the current node is a
    near-verbatim copy of some ancestor, the divergence was inherited,
    not introduced, so responsibility moves up the lineage.  The walk
    stops at the first node with no faithful-copy parent — the account
    that actually authored this content (whether a distortion of a
    factual story or a fabrication from whole cloth).
    """
    if article_id not in graph:
        return None
    current = article_id
    visited: set[str] = set()
    while True:
        visited.add(current)
        copy_parents = [
            parent
            for parent in graph.successors(current)
            if parent not in visited
            and not graph.nodes[parent].get("is_fact_root")
            and graph.edges[current, parent].get("weight", 1.0) <= copy_epsilon
        ]
        if not copy_parents:
            return graph.nodes[current].get("author")
        current = min(
            copy_parents, key=lambda p: (graph.edges[current, p].get("weight", 1.0), p)
        )
