"""Blocks: ordered transaction batches chained by hash.

Each block commits to its transactions through a Merkle root, to its
predecessor through ``prev_hash``, and to its proposer.  Block hashes
cover the header only (the Merkle root stands in for the body), matching
how real chains keep headers verifiable without the full body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.transaction import Transaction
from repro.crypto.hashing import hash_json
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.errors import InvalidBlockError

__all__ = ["Block", "make_genesis_block", "GENESIS_PREV_HASH"]

GENESIS_PREV_HASH = "0" * 64


@dataclass(frozen=True)
class Block:
    """An immutable block. Use :meth:`build` so derived fields stay consistent."""

    height: int
    prev_hash: str
    merkle_root: str
    timestamp: float
    proposer: str
    transactions: tuple[Transaction, ...]
    block_hash: str = field(default="")

    @classmethod
    def build(
        cls,
        height: int,
        prev_hash: str,
        timestamp: float,
        proposer: str,
        transactions: list[Transaction],
    ) -> "Block":
        txs = tuple(transactions)
        tree = MerkleTree([tx.tx_id for tx in txs])
        merkle_root = tree.root
        header_hash = cls._header_hash(height, prev_hash, merkle_root, timestamp, proposer)
        block = cls(
            height=height,
            prev_hash=prev_hash,
            merkle_root=merkle_root,
            timestamp=timestamp,
            proposer=proposer,
            transactions=txs,
            block_hash=header_hash,
        )
        # Seed the proof cache with the tree just built (see _merkle_tree).
        object.__setattr__(block, "_merkle_cache", tree)
        return block

    @staticmethod
    def _header_hash(
        height: int, prev_hash: str, merkle_root: str, timestamp: float, proposer: str
    ) -> str:
        return hash_json(
            {
                "height": height,
                "prev_hash": prev_hash,
                "merkle_root": merkle_root,
                "timestamp": timestamp,
                "proposer": proposer,
            }
        )

    def _merkle_tree(self) -> MerkleTree:
        """The block's Merkle tree, built once and cached.

        Blocks are immutable (frozen dataclass over a tuple of frozen
        transactions), so the cache never needs invalidation; before it
        existed every inclusion proof rebuilt the full tree, making an
        explorer serving p proofs over an n-tx block pay O(p·n) hashing.
        """
        tree = getattr(self, "_merkle_cache", None)
        if tree is None:
            tree = MerkleTree([tx.tx_id for tx in self.transactions])
            object.__setattr__(self, "_merkle_cache", tree)
        return tree

    def verify_structure(self) -> None:
        """Check internal consistency (root, hash); raise on tampering."""
        expected_root = self._merkle_tree().root
        if expected_root != self.merkle_root:
            raise InvalidBlockError(f"block {self.height}: Merkle root mismatch")
        expected_hash = self._header_hash(
            self.height, self.prev_hash, self.merkle_root, self.timestamp, self.proposer
        )
        if expected_hash != self.block_hash:
            raise InvalidBlockError(f"block {self.height}: header hash mismatch")

    def prove_inclusion(self, tx_id: str) -> MerkleProof:
        """Merkle inclusion proof for one of this block's transactions."""
        tx_ids = [tx.tx_id for tx in self.transactions]
        try:
            index = tx_ids.index(tx_id)
        except ValueError:
            raise InvalidBlockError(f"tx {tx_id[:12]} not in block {self.height}") from None
        return self._merkle_tree().prove(index)

    def __len__(self) -> int:
        return len(self.transactions)


def make_genesis_block(timestamp: float = 0.0) -> Block:
    """The fixed first block every peer starts from."""
    return Block.build(
        height=0,
        prev_hash=GENESIS_PREV_HASH,
        timestamp=timestamp,
        proposer="genesis",
        transactions=[],
    )
