"""Link latency models for the simulated network.

The paper's scalability challenge (§VII) is about a *globally* connected
news supply chain, so the network harness needs latency distributions
from LAN-uniform to geo-distributed lognormal.  All models draw from an
injected ``random.Random`` for reproducibility.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

__all__ = [
    "LatencyModel",
    "FixedLatency",
    "UniformLatency",
    "LogNormalLatency",
    "GeoLatency",
    "ScaledLatency",
]


class LatencyModel(ABC):
    """Samples a one-way message delay between two node ids."""

    @abstractmethod
    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        """Return a delay in simulated seconds (must be >= 0)."""


class FixedLatency(LatencyModel):
    """Every message takes exactly *delay* seconds — the analysis-friendly
    model used by most consensus-protocol unit tests."""

    def __init__(self, delay: float = 0.05):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.delay = delay

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Uniform delay in [low, high] — a LAN / single-datacenter model."""

    def __init__(self, low: float = 0.01, high: float = 0.1):
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed delays typical of WAN paths.

    Parameterised by the median delay and sigma of the underlying normal,
    so ``LogNormalLatency(median=0.08)`` reads as "80 ms typical, with a
    long tail".
    """

    def __init__(self, median: float = 0.08, sigma: float = 0.5):
        if median <= 0:
            raise ValueError("median must be positive")
        self.mu = math.log(median)
        self.sigma = sigma

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)


class ScaledLatency(LatencyModel):
    """Multiply another model's delays by a constant factor.

    The chaos harness installs this over ``Network.latency`` for a
    window to model congestion spikes, then restores the base model.
    """

    def __init__(self, base: LatencyModel, factor: float):
        if factor <= 0:
            raise ValueError("factor must be positive")
        self.base = base
        self.factor = factor

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        return self.base.sample(src, dst, rng) * self.factor


class GeoLatency(LatencyModel):
    """Region-aware latency: nodes are assigned to regions and each
    region pair gets a base RTT plus lognormal jitter.

    This is the model E9 uses for the "global population" deployment the
    paper envisions: intra-region is fast, cross-region pays a fixed
    propagation cost.
    """

    def __init__(
        self,
        regions: dict[str, str],
        intra_base: float = 0.01,
        inter_base: float = 0.12,
        jitter_sigma: float = 0.3,
    ):
        self.regions = dict(regions)
        self.intra_base = intra_base
        self.inter_base = inter_base
        self.jitter_sigma = jitter_sigma

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        same = self.regions.get(src) == self.regions.get(dst)
        base = self.intra_base if same else self.inter_base
        return base * rng.lognormvariate(0.0, self.jitter_sigma)
