"""Pending-transaction pool feeding the ordering service.

FIFO with dedup by transaction id.  The pool also enforces a capacity so
scalability experiments can observe back-pressure instead of unbounded
memory growth.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.chain.transaction import Transaction
from repro.errors import ChainError

__all__ = ["Mempool"]


class Mempool:
    """Ordered set of transactions awaiting inclusion in a block."""

    def __init__(self, capacity: int = 100_000):
        self._pending: OrderedDict[str, Transaction] = OrderedDict()
        self.capacity = capacity
        self.rejected_full = 0
        self.rejected_duplicate = 0

    def add(self, tx: Transaction) -> bool:
        """Admit a transaction; False if duplicate or pool is full."""
        if tx.tx_id in self._pending:
            self.rejected_duplicate += 1
            return False
        if len(self._pending) >= self.capacity:
            self.rejected_full += 1
            return False
        self._pending[tx.tx_id] = tx
        return True

    def take(self, max_count: int) -> list[Transaction]:
        """Remove and return up to *max_count* transactions, FIFO."""
        if max_count <= 0:
            raise ChainError("max_count must be positive")
        batch: list[Transaction] = []
        while self._pending and len(batch) < max_count:
            _, tx = self._pending.popitem(last=False)
            batch.append(tx)
        return batch

    def snapshot(self) -> list[Transaction]:
        """The pending transactions, in FIFO order, without removing them."""
        return list(self._pending.values())

    def remove(self, tx_ids: Iterable[str]) -> None:
        """Drop transactions that were committed via someone else's block.

        Accepts any iterable (consensus callers pass generators), and
        consumes it exactly once.
        """
        for tx_id in tx_ids:
            self._pending.pop(tx_id, None)

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pending
