"""Core model for the determinism & simulation-safety linter.

The analyzer is a pure-stdlib :mod:`ast` pass: every rule receives a
parsed :class:`ModuleInfo` (or, for cross-file rules, the whole batch)
and yields :class:`Finding` records.  Rules register themselves with
:func:`register`, so adding a rule family is "write a module, decorate
the classes" — :mod:`repro.analysis.runner` discovers the rest.

Design notes
------------
* Findings are keyed for the baseline by *content* (rule, path, the
  stripped source line, and an occurrence index), never by line number,
  so unrelated edits above a baselined finding do not invalidate it.
* Inline suppressions use ``# repro: noqa[RULE1,RULE2] reason`` (a bare
  ``# repro: noqa`` suppresses every rule on that line).  The reason
  string is free-form but encouraged: the suppression should explain
  itself to the next reader.
* Severities are just ``error`` and ``warn``; only unsuppressed,
  un-baselined ``error`` findings affect the exit code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "ALL_RULES",
    "AnalysisConfig",
    "Finding",
    "ImportMap",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "parse_noqa",
    "register",
]

SEVERITIES = ("error", "warn")

#: ``# repro: noqa`` / ``# repro: noqa[DET001,PYF001] optional reason``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?(?P<reason>[^#]*)"
)


@dataclass
class Finding:
    """One diagnostic: where, what rule, how severe, and why."""

    rule: str
    severity: str  # "error" | "warn"
    path: str
    line: int
    col: int
    message: str
    context: str = ""  # stripped source line, used for baseline keying
    baselined: bool = False

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"

    def as_record(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
            "baselined": self.baselined,
        }


@dataclass
class AnalysisConfig:
    """Tunable knobs shared by every rule.

    Defaults encode this repository's conventions; tests override
    fields to point rules at fixture trees.
    """

    #: Module prefixes where wall-clock reads are SIM errors (sim-time
    #: is in scope there via the discrete-event Simulator).
    sim_domains: tuple[str, ...] = ("repro.simnet", "repro.chain", "repro.social")
    #: Modules exempt from SIM even inside a domain.  repro.obs and
    #: repro.crypto.batch intentionally measure *wall* time (host-side
    #: benchmarking of real compute cost, not simulated latency).
    sim_exempt_modules: tuple[str, ...] = ("repro.obs", "repro.crypto.batch")
    #: Path roots (first path component) whose findings are capped at
    #: ``warn`` — benchmarks and examples measure wall time and seed ad
    #: hoc RNGs by design; tests get the same latitude.
    warn_only_roots: tuple[str, ...] = ("tests", "benchmarks", "examples")
    #: Call targets whose output is order-sensitive (Merkle/ledger/hash
    #: inputs): feeding them an unordered set/dict view is a DET hazard.
    order_sensitive_sinks: tuple[str, ...] = (
        "MerkleTree", "hash_json", "sha256_hex", "sha256_bytes", "sha512_bytes",
    )
    #: Classes whose instances cross the peer message boundary: methods
    #: returning references to their mutable ``__init__`` state leak
    #: shared-aliasing bugs between peers (ALIAS002).
    #: The storage classes are boundary classes too: a recovered chain
    #: is handed to the peer, so a store method returning a reference to
    #: its own mutable state would alias the store into live consensus.
    #: The compiled cascade graph and the fast runner join them: a
    #: compiled graph is shared between scalar and vectorized engines
    #: (and across benchmark repetitions), so leaking mutable internals
    #: would couple runs that must stay independent.
    boundary_classes: tuple[str, ...] = (
        "Peer", "SyncManager", "WorldState", "Mempool",
        "DurableStore", "SQLiteStore", "BlockLog", "SimDisk",
        "ChainIndex", "CompiledCascadeGraph", "FastCascadeRunner",
    )
    #: Directory names skipped during directory walks — the linter's own
    #: known-bad fixture corpus lives in tests/analysis/fixtures/.
    #: Files passed explicitly on the command line are always analyzed.
    exclude_dir_names: tuple[str, ...] = ("fixtures", "__pycache__")


@dataclass
class ModuleInfo:
    """A parsed source file plus everything rules need to inspect it."""

    path: str
    module: str  # dotted module name ("" when not importable as a package)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, path: str, module: str = "") -> "ModuleInfo":
        tree = ast.parse(source, filename=path)
        return cls(path=path, module=module, source=source, tree=tree,
                   lines=source.splitlines())

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def parse_noqa(lines: Iterable[str]) -> dict[int, set[str] | None]:
    """Map line number -> suppressed rule ids (``None`` = all rules)."""
    out: dict[int, set[str] | None] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = _NOQA_RE.search(text)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip() for r in rules.split(",") if r.strip()}
    return out


class ImportMap:
    """Resolve local names to canonical dotted paths via the imports.

    ``import random as rnd`` maps ``rnd -> random``; ``from time import
    monotonic as mono`` maps ``mono -> time.monotonic``.  Rules then ask
    :meth:`resolve` for the canonical dotted name of any ``Name`` /
    ``Attribute`` chain and match against banned sets, so aliasing can
    never dodge a rule.
    """

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    canonical = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = canonical
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:  # relative imports: not stdlib
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted path for a Name/Attribute chain, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


class Rule:
    """Base class: subclass, set the class attributes, yield findings."""

    rule_id: str = ""
    severity: str = "error"
    summary: str = ""

    def __init__(self, config: AnalysisConfig):
        self.config = config

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        """Per-file pass; default does nothing."""
        return iter(())

    def finish(self, modules: list[ModuleInfo]) -> Iterator[Finding]:
        """Cross-file pass, called once after every module was checked."""
        return iter(())

    def finding(self, mod: ModuleInfo, node: ast.AST, message: str,
                severity: str | None = None) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.rule_id,
            severity=severity or self.severity,
            path=mod.path,
            line=line,
            col=col + 1,
            message=message,
            context=mod.line_text(line),
        )


ALL_RULES: list[type[Rule]] = []


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"rule {rule_cls.__name__} must define rule_id")
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(f"rule {rule_cls.rule_id}: bad severity {rule_cls.severity!r}")
    ALL_RULES.append(rule_cls)
    return rule_cls


def all_rules(config: AnalysisConfig | None = None) -> list[Rule]:
    """Fresh rule instances (cross-file rules keep per-run state)."""
    # Importing the rule modules registers their classes; deferred to
    # here so `from repro.analysis.core import Finding` stays cheap.
    from repro.analysis import (  # repro: noqa[PYF001] imported for registration side effect
        rules_alias, rules_det, rules_obs, rules_pyf, rules_sim,
    )

    config = config or AnalysisConfig()
    seen: set[str] = set()
    instances: list[Rule] = []
    for rule_cls in ALL_RULES:
        if rule_cls.rule_id in seen:
            continue
        seen.add(rule_cls.rule_id)
        instances.append(rule_cls(config))
    return sorted(instances, key=lambda r: r.rule_id)
