"""Vectorized cascade engine: the million-agent propagation path.

The scalar :class:`~repro.social.cascade.CascadeRunner` walks a
networkx graph edge by edge in Python — perfect as a readable oracle,
hopeless at the ~1M-agent scale the paper's §VII scalability story
needs.  This module keeps the exact cascade semantics but restates the
hot loop as array programs:

- :class:`CompiledCascadeGraph` freezes a bound follow graph into CSR
  adjacency (``indptr``/``indices``) plus struct-of-arrays agent state
  (share probability, attention, kind, ring, community as parallel
  NumPy arrays), or synthesizes one directly at sizes where building a
  networkx graph is already the bottleneck;
- :class:`FastCascadeRunner.run` replays a cascade frontier-at-a-time:
  successor slices are gathered per round, already-seen pairs masked,
  share decisions drawn as one vectorized Bernoulli per round, and
  Python objects (:class:`ShareEvent`, mutated :class:`Article`) are
  materialized only for the sparse set of actual shares;
- :meth:`FastCascadeRunner.run_stats` is the bulk statistics path used
  by the scaling benchmarks: no per-share objects at all, just reach
  curves and share counts, which is what a 12-round 1M-agent cascade
  rides on.

Equivalence with the scalar engine is not aspirational: both runners
accept a :class:`KeyedDraws` source that maps (article, agent, purpose)
to a uniform — consumption-order-free randomness — under which the two
engines produce byte-identical events, articles, and reach (the
``ChainIndex.verify_against`` pattern, applied to the simulator).
Without an injected source the fast engine draws from one seeded
``numpy.random.Generator``, so every run is deterministic in its seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
import networkx as nx

from repro.corpus.articles import Article
from repro.corpus.generator import CorpusGenerator
from repro.errors import SimulationError
from repro.social.agents import AgentKind, KIND_PROFILES, SocialAgent
from repro.social.cascade import (
    DRAW_BENIGN,
    DRAW_MUTATE,
    DRAW_SHARE,
    DRAW_VERIFY,
    CascadeResult,
    ShareEvent,
    emotional_appeal,
)

__all__ = [
    "KeyedDraws",
    "CompiledCascadeGraph",
    "FastCascadeRunner",
    "CascadeStats",
]

_MASK64 = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MIX_MUL_1 = 0xBF58476D1CE4E5B9
_MIX_MUL_2 = 0x94D049BB133111EB
#: Lane separation constants: agent index and purpose land in distinct
#: high-entropy lanes of the 64-bit counter before mixing.
_PRIME_AGENT = 0xA24BAED4963EE407
_PRIME_PURPOSE = 0x9FB21C651E98DF25

_KIND_ORDER = (AgentKind.USER, AgentKind.BOT, AgentKind.CYBORG, AgentKind.JOURNALIST)
_KIND_CODE = {kind: code for code, kind in enumerate(_KIND_ORDER)}


def _mix64(x: int) -> int:
    """SplitMix64 finalizer over Python ints (masked to 64 bits)."""
    x = (x + _SPLITMIX_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX_MUL_1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX_MUL_2) & _MASK64
    return x ^ (x >> 31)


def _mix64_array(x: np.ndarray) -> np.ndarray:
    """The same SplitMix64 finalizer over a uint64 array (wrapping)."""
    x = x + np.uint64(_SPLITMIX_GAMMA)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX_MUL_1)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX_MUL_2)
    return x ^ (x >> np.uint64(31))


class KeyedDraws:
    """Counter-based uniform source keyed by (article, agent, purpose).

    Unlike a sequential RNG, a keyed draw is a pure function of its key,
    so two engines that evaluate candidates in different orders (or skip
    candidates the other one visits) still see *identical* randomness.
    This is what makes scalar-vs-vectorized equivalence testable as
    byte equality rather than "statistically similar".

    The scalar path uses :meth:`unit`; the vectorized path calls
    :meth:`unit_array` with the same key material and gets bit-identical
    doubles (both derive the double from the top 53 bits of the same
    SplitMix64 output).
    """

    def __init__(self, seed: int = 0):
        self.seed = _mix64(seed & _MASK64)

    def key(self, article_id: str) -> int:
        """Stable 64-bit key for one article id."""
        digest = hashlib.blake2b(article_id.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "little")

    def _counter(self, article_key: int, agent_index: int, purpose: int) -> int:
        return (
            self.seed
            + article_key
            + agent_index * _PRIME_AGENT
            + purpose * _PRIME_PURPOSE
        ) & _MASK64

    def unit(self, article_key: int, agent_index: int, purpose: int) -> float:
        """One uniform in [0, 1) for a single (article, agent, purpose)."""
        return (_mix64(self._counter(article_key, agent_index, purpose)) >> 11) * 2.0**-53

    def unit_array(
        self, article_keys: np.ndarray, agent_indices: np.ndarray, purpose: int
    ) -> np.ndarray:
        """Vectorized :meth:`unit` over parallel key/agent arrays."""
        counters = (
            np.uint64(self.seed)
            + article_keys.astype(np.uint64)
            + agent_indices.astype(np.uint64) * np.uint64(_PRIME_AGENT)
            + np.uint64((purpose * _PRIME_PURPOSE) & _MASK64)
        )
        return (_mix64_array(counters) >> np.uint64(11)) * 2.0**-53


class CompiledCascadeGraph:
    """A bound follow graph frozen into CSR + struct-of-arrays form.

    ``indices[indptr[u]:indptr[u + 1]]`` are the followers of agent
    ``u`` (edge u -> v means content flows u to v), in the same order
    ``graph.successors`` yields them, so the vectorized engine visits
    candidates in exactly the scalar engine's order.  Agent indices are
    ranks in sorted node order — the ``bind_agents`` convention.

    Compilation is a snapshot: mutate the underlying agents (e.g.
    ``make_botnet``) or edges and you must recompile.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        share_probability: np.ndarray,
        attention: np.ndarray,
        kind_codes: np.ndarray,
        malicious: np.ndarray,
        mutate_probability: np.ndarray,
        ring_codes: np.ndarray,
        community: np.ndarray,
        agent_ids: list[str] | None = None,
        nodes: list[int] | None = None,
    ):
        self.n_agents = len(indptr) - 1
        self.indptr = indptr
        self.indices = indices
        self.share_probability = share_probability
        self.attention = attention
        self.kind_codes = kind_codes
        self.journalist = kind_codes == _KIND_CODE[AgentKind.JOURNALIST]
        self.malicious = malicious
        self.mutate_probability = mutate_probability
        self.ring_codes = ring_codes
        self.community = community
        self._agent_ids = agent_ids
        self._nodes = nodes
        self._node_index = (
            {node: i for i, node in enumerate(nodes)} if nodes is not None else None
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def from_graph(cls, graph: nx.DiGraph) -> "CompiledCascadeGraph":
        """Compile a bound networkx follow graph (``bind_agents`` done)."""
        nodes = sorted(graph.nodes())
        node_index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        agents: list[SocialAgent] = []
        for node in nodes:
            agent = graph.nodes[node].get("agent")
            if agent is None:
                raise SimulationError(
                    f"node {node!r} has no bound agent — call bind_agents first"
                )
            agents.append(agent)
        indptr = np.zeros(n + 1, dtype=np.int64)
        out_lists: list[list[int]] = []
        total = 0
        for i, node in enumerate(nodes):
            followers = [node_index[v] for v in graph.successors(node)]
            out_lists.append(followers)
            total += len(followers)
            indptr[i + 1] = total
        indices = np.empty(total, dtype=np.int32)
        for i, followers in enumerate(out_lists):
            indices[indptr[i] : indptr[i + 1]] = followers
        ring_names: dict[str, int] = {}
        ring_codes = np.full(n, -1, dtype=np.int32)
        for i, agent in enumerate(agents):
            if agent.ring is not None:
                ring_codes[i] = ring_names.setdefault(agent.ring, len(ring_names))
        return cls(
            indptr=indptr,
            indices=indices,
            share_probability=np.array([a.share_probability for a in agents]),
            attention=np.array([a.attention for a in agents], dtype=np.int32),
            kind_codes=np.array([_KIND_CODE[a.kind] for a in agents], dtype=np.int8),
            malicious=np.array([a.malicious for a in agents], dtype=bool),
            mutate_probability=np.array([a.mutate_probability for a in agents]),
            ring_codes=ring_codes,
            community=np.array([a.community for a in agents], dtype=np.int32),
            agent_ids=[a.agent_id for a in agents],
            nodes=nodes,
        )

    @classmethod
    def synthesize(
        cls,
        n_agents: int,
        mean_degree: float = 8.0,
        seed: int = 0,
        bot_fraction: float = 0.08,
        cyborg_fraction: float = 0.05,
        journalist_fraction: float = 0.03,
        max_degree: int | None = None,
    ) -> "CompiledCascadeGraph":
        """Synthesize a follow graph directly in CSR form.

        At 1M agents even *allocating* a networkx graph dominates, so
        the scale benchmarks generate the adjacency arrays directly: a
        heavy-tailed (lognormal) follower-count distribution with
        uniformly drawn followers, and agent state drawn from the same
        ``KIND_PROFILES`` the object population uses.  Entirely driven
        by one seeded ``numpy.random.Generator``.
        """
        if n_agents < 2:
            raise SimulationError("need at least two agents")
        rng = np.random.default_rng(seed)
        cap = max_degree or max(16, n_agents // 100)
        # Lognormal with median ~= mean_degree / e^(sigma^2/2) keeps the
        # mean near mean_degree while giving hub-like heavy tails.
        sigma = 1.0
        mu = np.log(mean_degree) - sigma * sigma / 2.0
        degrees = np.clip(
            rng.lognormal(mean=mu, sigma=sigma, size=n_agents), 1, cap
        ).astype(np.int64)
        indptr = np.zeros(n_agents + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        indices = rng.integers(0, n_agents, size=total, dtype=np.int32)
        # Remap self-follows to the next agent (cheap, keeps counts).
        own = np.repeat(np.arange(n_agents, dtype=np.int32), degrees)
        loops = indices == own
        indices[loops] = (indices[loops] + 1) % n_agents

        kind_draw = rng.random(n_agents)
        kind_codes = np.zeros(n_agents, dtype=np.int8)
        bot_cut = bot_fraction
        cyborg_cut = bot_cut + cyborg_fraction
        journalist_cut = cyborg_cut + journalist_fraction
        kind_codes[kind_draw < bot_cut] = _KIND_CODE[AgentKind.BOT]
        kind_codes[(kind_draw >= bot_cut) & (kind_draw < cyborg_cut)] = _KIND_CODE[
            AgentKind.CYBORG
        ]
        kind_codes[(kind_draw >= cyborg_cut) & (kind_draw < journalist_cut)] = _KIND_CODE[
            AgentKind.JOURNALIST
        ]

        profile_share = np.array([KIND_PROFILES[k].share_probability for k in _KIND_ORDER])
        profile_malicious = np.array(
            [KIND_PROFILES[k].malicious_probability for k in _KIND_ORDER]
        )
        profile_mutate = np.array([KIND_PROFILES[k].mutate_probability for k in _KIND_ORDER])
        profile_attention = np.array(
            [KIND_PROFILES[k].attention for k in _KIND_ORDER], dtype=np.int32
        )
        malicious = rng.random(n_agents) < profile_malicious[kind_codes]
        return cls(
            indptr=indptr,
            indices=indices,
            share_probability=profile_share[kind_codes],
            attention=profile_attention[kind_codes],
            kind_codes=kind_codes,
            malicious=malicious,
            mutate_probability=np.where(malicious, profile_mutate[kind_codes], 0.0),
            ring_codes=np.full(n_agents, -1, dtype=np.int32),
            community=np.zeros(n_agents, dtype=np.int32),
        )

    # -- lookups --------------------------------------------------------

    @property
    def n_edges(self) -> int:
        return int(self.indptr[-1])

    def agent_id(self, index: int) -> str:
        if self._agent_ids is not None:
            return self._agent_ids[index]
        return f"agent-{index:07d}"

    def node_to_index(self, node: int) -> int:
        """Map an original graph node label to its agent index."""
        if self._node_index is None:
            # Synthesized graphs: node labels ARE indices.
            if not 0 <= node < self.n_agents:
                raise SimulationError(f"agent index {node} out of range")
            return node
        try:
            return self._node_index[node]
        except KeyError:
            raise SimulationError(f"unknown graph node {node!r}") from None

    def out_degree(self, index: int) -> int:
        return int(self.indptr[index + 1] - self.indptr[index])


@dataclass
class CascadeStats:
    """Array-level outcome of a bulk (:meth:`FastCascadeRunner.run_stats`)
    cascade: everything the scaling benchmarks read, none of the
    per-share Python objects."""

    n_agents: int
    roots: list[int]
    rounds_run: int
    shares_by_round: list[int] = field(default_factory=list)
    #: cumulative unique exposure per root per round, shape (roots, rounds).
    reach_curves: np.ndarray | None = None
    #: total candidate edges examined (the vectorized engine's unit of work).
    candidates_examined: int = 0
    #: per-agent share counts over the whole cascade (len n_agents).
    shares_by_agent: np.ndarray | None = None

    @property
    def total_shares(self) -> int:
        return int(sum(self.shares_by_round))

    def reach(self, root_position: int) -> int:
        if self.reach_curves is None or self.reach_curves.shape[1] == 0:
            return 0
        return int(self.reach_curves[root_position, -1])

    def reach_curve(self, root_position: int) -> list[int]:
        if self.reach_curves is None:
            return []
        return [int(v) for v in self.reach_curves[root_position]]


class FastCascadeRunner:
    """Vectorized drop-in for :class:`~repro.social.cascade.CascadeRunner`.

    Accepts either a bound networkx graph (compiled on construction) or
    a prebuilt :class:`CompiledCascadeGraph`.  ``run`` keeps the scalar
    engine's full contract — events, mutated articles, exposure sets,
    the ``on_share`` hook — materializing objects only for actual
    shares; ``run_stats`` drops even that for pure array output.

    The ``flagged``/``promoted`` predicates are evaluated once per
    frontier article per round (at round start), not once per candidate
    edge; predicates that mutate state mid-round (as ``run_race`` does
    exactly at its flag round) may therefore disagree with the scalar
    engine in that boundary round.  Pure predicates agree everywhere.
    """

    def __init__(
        self,
        graph: nx.DiGraph | CompiledCascadeGraph,
        corpus: CorpusGenerator | None = None,
        seed: int = 0,
        flagged: Callable[[str], bool] | None = None,
        promoted: Callable[[str], bool] | None = None,
        on_share: Callable[[ShareEvent, Article], None] | None = None,
        damping: float = 0.8,
        promotion_boost: float = 2.0,
        journalist_verify_accuracy: float = 0.85,
        draws: KeyedDraws | None = None,
    ):
        if isinstance(graph, CompiledCascadeGraph):
            self.compiled = graph
        else:
            self.compiled = CompiledCascadeGraph.from_graph(graph)
        self.corpus = corpus
        self.flagged = flagged or (lambda article_id: False)
        self.promoted = promoted or (lambda article_id: False)
        self.on_share = on_share
        self.damping = damping
        self.promotion_boost = promotion_boost
        self.journalist_verify_accuracy = journalist_verify_accuracy
        self.draws = draws
        self._rng = np.random.default_rng(seed)
        self._appeal_cache: dict[str, float] = {}
        # Per-round attention budgets, generation-stamped so a 1M-agent
        # world never re-zeroes the arrays between rounds.
        n = self.compiled.n_agents
        self._att_stamp = np.full(n, -1, dtype=np.int64)
        self._att_count = np.zeros(n, dtype=np.int32)
        self._round_stamp = 0

    # -- shared helpers -------------------------------------------------

    def _appeal(self, article: Article) -> float:
        cached = self._appeal_cache.get(article.text)
        if cached is None:
            cached = emotional_appeal(article)
            self._appeal_cache[article.text] = cached
        return cached

    def _expand(self, posters: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """CSR frontier expansion: (candidate agents, frontier entry of
        each candidate), in exactly the scalar engine's visit order."""
        g = self.compiled
        starts = g.indptr[posters]
        counts = g.indptr[posters + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        offsets = np.cumsum(counts) - counts
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
        cand_agent = g.indices[np.repeat(starts, counts) + within].astype(np.int64)
        cand_entry = np.repeat(np.arange(len(posters), dtype=np.int64), counts)
        return cand_agent, cand_entry

    @staticmethod
    def _first_occurrence(keys: np.ndarray) -> np.ndarray:
        """Boolean mask keeping the first occurrence of each key, in
        original order (the vectorized ``agent.seen`` check)."""
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        keep = np.ones(len(keys), dtype=bool)
        keep[order[1:]] = sorted_keys[1:] != sorted_keys[:-1]
        return keep

    # -- full-fidelity path ---------------------------------------------

    def run(
        self,
        seeds: list[tuple[int, Article]],
        n_rounds: int = 12,
        start_time: float = 0.0,
        time_per_round: float = 1.0,
        materialize_exposed: bool = True,
    ) -> CascadeResult:
        """Propagate *seeds* with the scalar engine's full contract.

        With an injected :class:`KeyedDraws` source (and the same source
        driving a :class:`~repro.social.cascade.CascadeRunner`), the
        returned events, articles, reach sets and round curves are
        byte-identical to the scalar engine's.  Set
        ``materialize_exposed=False`` at scale to keep exposure as
        counts (``CascadeResult.reach_counts``) instead of building
        per-root sets of agent-id strings.
        """
        if self.corpus is None:
            raise SimulationError("run() needs a corpus; use run_stats for bulk mode")
        g = self.compiled
        n = g.n_agents
        result = CascadeResult()
        keyed = self.draws is not None

        root_order: list[str] = []
        exposed: list[np.ndarray] = []  # per root, bool[n]
        exposed_count: list[int] = []
        root_position: dict[str, int] = {}

        frontier_posters: list[int] = []
        frontier_articles: list[Article] = []
        for node, article in seeds:
            index = g.node_to_index(node)
            root = article.article_id
            if root not in result.root_of:
                result.record_article(article, root)
            if root in root_position:
                # Mirror the scalar engine's quirk: re-seeding the same
                # article resets its exposure set to the latest poster.
                position = root_position[root]
                exposed[position][:] = False
            else:
                position = len(root_order)
                root_position[root] = position
                root_order.append(root)
                exposed.append(np.zeros(n, dtype=bool))
                exposed_count.append(0)
            exposed[position][index] = True
            exposed_count[position] = 1
            frontier_posters.append(index)
            frontier_articles.append(article)

        for round_index in range(n_rounds):
            time = start_time + round_index * time_per_round
            self._round_stamp += 1
            shares_this_round = 0
            next_posters: list[int] = []
            next_articles: list[Article] = []

            posters = np.asarray(frontier_posters, dtype=np.int64)
            # Unique frontier articles in first-appearance order; two
            # seed entries may share an article, so dedup keys on the
            # article ordinal rather than the frontier entry.
            art_list: list[Article] = []
            art_ordinal: dict[str, int] = {}
            entry_art = np.empty(len(frontier_articles), dtype=np.int64)
            for position, article in enumerate(frontier_articles):
                ordinal = art_ordinal.get(article.article_id)
                if ordinal is None:
                    ordinal = len(art_list)
                    art_ordinal[article.article_id] = ordinal
                    art_list.append(article)
                entry_art[position] = ordinal

            appeal = np.array([self._appeal(a) for a in art_list])
            flagged = np.array([self.flagged(a.article_id) for a in art_list], dtype=bool)
            promoted = np.array([self.promoted(a.article_id) for a in art_list], dtype=bool)
            fake = np.array([a.label_fake for a in art_list], dtype=bool)
            art_root = np.array(
                [root_position[result.root_of[a.article_id]] for a in art_list],
                dtype=np.int64,
            )
            if keyed:
                art_keys = np.array(
                    [self.draws.key(a.article_id) for a in art_list], dtype=np.uint64
                )

            cand_agent, cand_entry = self._expand(posters)
            if len(cand_agent):
                cand_art = entry_art[cand_entry]
                keep = self._first_occurrence(cand_art * np.int64(n) + cand_agent)
                cand_agent = cand_agent[keep]
                cand_entry = cand_entry[keep]
                cand_art = cand_art[keep]

                # Exposure accounting per root (few roots, boolean mask each).
                cand_root = art_root[cand_art]
                for position in range(len(root_order)):
                    agents_here = cand_agent[cand_root == position]
                    if not len(agents_here):
                        continue
                    newly = np.unique(agents_here[~exposed[position][agents_here]])
                    exposed[position][newly] = True
                    exposed_count[position] += len(newly)

                # One vectorized Bernoulli per round for the share draw.
                probability = g.share_probability[cand_agent] * appeal[cand_art]
                poster_ring = g.ring_codes[posters[cand_entry]]
                agent_ring = g.ring_codes[cand_agent]
                ring_pair = (agent_ring >= 0) & (agent_ring == poster_ring)
                probability = np.where(ring_pair, np.maximum(probability, 0.9), probability)
                cand_flagged = flagged[cand_art]
                cand_promoted = promoted[cand_art]
                probability = np.where(
                    cand_flagged,
                    probability * (1.0 - self.damping),
                    np.where(cand_promoted, probability * self.promotion_boost, probability),
                )
                np.minimum(probability, 1.0, out=probability)

                journalist = g.journalist[cand_agent]
                refuse = journalist & cand_flagged
                if keyed:
                    u_verify = self.draws.unit_array(
                        art_keys[cand_art], cand_agent, DRAW_VERIFY
                    )
                    u_share = self.draws.unit_array(
                        art_keys[cand_art], cand_agent, DRAW_SHARE
                    )
                else:
                    u_verify = self._rng.random(len(cand_agent))
                    u_share = self._rng.random(len(cand_agent))
                refuse |= journalist & fake[cand_art] & (
                    u_verify < self.journalist_verify_accuracy
                )
                wants = ~refuse & (u_share < probability)
                winners = np.flatnonzero(wants)

                if not keyed and len(winners):
                    u_mutate = self._rng.random(len(winners))
                    u_benign = self._rng.random(len(winners))

                for winner_position, ci in enumerate(winners):
                    agent = int(cand_agent[ci])
                    if self._att_stamp[agent] != self._round_stamp:
                        self._att_stamp[agent] = self._round_stamp
                        self._att_count[agent] = 0
                    if self._att_count[agent] >= g.attention[agent]:
                        continue
                    self._att_count[agent] += 1
                    ordinal = int(cand_art[ci])
                    parent = art_list[ordinal]
                    agent_id = g.agent_id(agent)
                    if keyed:
                        parent_key = int(art_keys[ordinal])
                        mutate_draw = self.draws.unit(parent_key, agent, DRAW_MUTATE)
                        benign_draw = self.draws.unit(parent_key, agent, DRAW_BENIGN)
                    else:
                        mutate_draw = float(u_mutate[winner_position])
                        benign_draw = float(u_benign[winner_position])
                    if g.malicious[agent] and mutate_draw < g.mutate_probability[agent]:
                        derived = self.corpus.malicious_derivation(parent, agent_id, time)
                    elif benign_draw < 0.1:
                        derived = self.corpus.benign_derivation(parent, agent_id, time)
                    else:
                        derived = self.corpus.relay_derivation(parent, agent_id, time)
                    root = result.root_of[parent.article_id]
                    result.record_article(derived, root)
                    event = ShareEvent(
                        time=time,
                        round_index=round_index,
                        agent_id=agent_id,
                        source_agent_id=g.agent_id(int(posters[cand_entry[ci]])),
                        article_id=derived.article_id,
                        parent_article_id=parent.article_id,
                        op=derived.op,
                    )
                    result.events.append(event)
                    shares_this_round += 1
                    if self.on_share is not None:
                        self.on_share(event, derived)
                    next_posters.append(agent)
                    next_articles.append(derived)

            result.shares_by_round.append(shares_this_round)
            result.exposures_by_round.append(
                {root: exposed_count[pos] for pos, root in enumerate(root_order)}
            )
            frontier_posters = next_posters
            frontier_articles = next_articles
            if not frontier_posters:
                break

        for position, root in enumerate(root_order):
            result.reach_counts[root] = exposed_count[position]
            if materialize_exposed:
                result.exposed_agents[root] = {
                    g.agent_id(int(i)) for i in np.flatnonzero(exposed[position])
                }
        return result

    # -- bulk statistics path -------------------------------------------

    def run_stats(
        self,
        seed_nodes: Sequence[int],
        n_rounds: int = 12,
        appeal: float | Sequence[float] = 2.0,
        fake: bool | Sequence[bool] = True,
        flag_round: int | None = None,
        flagged_roots: Sequence[int] | None = None,
        promoted_roots: Sequence[int] | None = None,
    ) -> CascadeStats:
        """Bulk cascade: pure array propagation, no per-share objects.

        Each seed node starts one lineage whose articles all carry that
        lineage's ``appeal``/``fake`` attributes (derivations are
        treated as relays — no mutation text is synthesized, which is
        the approximation that buys the 1M-agent round times).
        ``flag_round`` activates flag damping on ``flagged_roots`` (and
        promotion on ``promoted_roots``) from that round on.
        """
        g = self.compiled
        n = g.n_agents
        roots = [g.node_to_index(node) for node in seed_nodes]
        n_roots = len(roots)
        appeal_arr = np.broadcast_to(np.asarray(appeal, dtype=float), (n_roots,)).copy()
        fake_arr = np.broadcast_to(np.asarray(fake, dtype=bool), (n_roots,)).copy()
        flag_mask = np.zeros(n_roots, dtype=bool)
        promote_mask = np.zeros(n_roots, dtype=bool)
        for position in flagged_roots or ():
            flag_mask[position] = True
        for position in promoted_roots or ():
            promote_mask[position] = True

        exposed = np.zeros((n_roots, n), dtype=bool)
        exposed_count = np.zeros(n_roots, dtype=np.int64)
        curves: list[np.ndarray] = []
        shares_by_round: list[int] = []
        shares_by_agent = np.zeros(n, dtype=np.int64)
        candidates_examined = 0

        frontier_agent = np.asarray(roots, dtype=np.int64)
        frontier_root = np.arange(n_roots, dtype=np.int64)
        exposed[frontier_root, frontier_agent] = True
        exposed_count[:] = 1
        article_base = 0  # global lineage-item ordinal for seen-dedup

        rounds_run = 0
        for round_index in range(n_rounds):
            rounds_run += 1
            intervening = flag_round is not None and round_index >= flag_round
            cand_agent, cand_entry = self._expand(frontier_agent)
            shares = 0
            next_agent = np.empty(0, dtype=np.int64)
            next_root = np.empty(0, dtype=np.int64)
            if len(cand_agent):
                candidates_examined += len(cand_agent)
                # Every frontier entry is a distinct lineage item, so the
                # seen-key is (global item ordinal, agent).
                item = article_base + cand_entry
                keep = self._first_occurrence(item * np.int64(n) + cand_agent)
                cand_agent = cand_agent[keep]
                cand_entry = cand_entry[keep]
                cand_root = frontier_root[cand_entry]

                for position in range(n_roots):
                    agents_here = cand_agent[cand_root == position]
                    if not len(agents_here):
                        continue
                    newly = np.unique(agents_here[~exposed[position][agents_here]])
                    exposed[position][newly] = True
                    exposed_count[position] += len(newly)

                probability = g.share_probability[cand_agent] * appeal_arr[cand_root]
                poster_ring = g.ring_codes[frontier_agent[cand_entry]]
                agent_ring = g.ring_codes[cand_agent]
                ring_pair = (agent_ring >= 0) & (agent_ring == poster_ring)
                probability = np.where(ring_pair, np.maximum(probability, 0.9), probability)
                if intervening:
                    cand_flagged = flag_mask[cand_root]
                    cand_promoted = promote_mask[cand_root] & ~cand_flagged
                    probability = np.where(
                        cand_flagged, probability * (1.0 - self.damping), probability
                    )
                    probability = np.where(
                        cand_promoted, probability * self.promotion_boost, probability
                    )
                else:
                    cand_flagged = np.zeros(len(cand_agent), dtype=bool)
                np.minimum(probability, 1.0, out=probability)

                journalist = g.journalist[cand_agent]
                refuse = journalist & cand_flagged
                cand_fake = fake_arr[cand_root]
                verify = self._rng.random(len(cand_agent))
                refuse |= journalist & cand_fake & (verify < self.journalist_verify_accuracy)
                wants = ~refuse & (self._rng.random(len(cand_agent)) < probability)

                winner_agent = cand_agent[wants]
                winner_root = cand_root[wants]
                if len(winner_agent):
                    # Vectorized attention cap: an agent keeps its first
                    # `attention` successful draws in candidate order.
                    order = np.argsort(winner_agent, kind="stable")
                    sorted_agents = winner_agent[order]
                    is_first = np.ones(len(sorted_agents), dtype=bool)
                    is_first[1:] = sorted_agents[1:] != sorted_agents[:-1]
                    group_start = np.maximum.accumulate(
                        np.where(is_first, np.arange(len(sorted_agents)), 0)
                    )
                    rank_sorted = np.arange(len(sorted_agents)) - group_start
                    allowed_sorted = rank_sorted < g.attention[sorted_agents]
                    allowed = np.empty(len(winner_agent), dtype=bool)
                    allowed[order] = allowed_sorted
                    next_agent = winner_agent[allowed]
                    next_root = winner_root[allowed]
                    shares = int(len(next_agent))
                    np.add.at(shares_by_agent, next_agent, 1)

            article_base += len(frontier_agent)
            shares_by_round.append(shares)
            curves.append(exposed_count.copy())
            frontier_agent = next_agent
            frontier_root = next_root
            if not len(frontier_agent):
                break

        return CascadeStats(
            n_agents=n,
            roots=roots,
            rounds_run=rounds_run,
            shares_by_round=shares_by_round,
            reach_curves=np.stack(curves, axis=1) if curves else None,
            candidates_examined=candidates_examined,
            shares_by_agent=shares_by_agent,
        )
