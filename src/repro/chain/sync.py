"""Consensus-agnostic block synchronization and crash recovery.

Every :class:`~repro.chain.peer.Peer` owns a :class:`SyncManager`.  It is
the one place a peer learns that it has fallen behind — a crash window,
a partition, or plain message loss — and the one place missed blocks are
fetched, verified, and applied.  Both consensus engines delegate to it:
PBFT hands over any committed block it cannot apply immediately, and the
PoA orderer's old ad-hoc anti-entropy probe is replaced wholesale.

Lag detection has two inputs:

- **signed height announcements** — every ``announce_interval`` each
  live peer broadcasts ``(node_id, height, head_hash)`` signed with its
  Ed25519 key.  Announcements claiming a height above our own are
  verified (and the announcer's public key is pinned first-use) before
  they may trigger a fetch, so an unsigned outsider cannot talk a peer
  into a sync spiral — at worst it can offer itself as a provider that
  never answers, which the retry machinery shrugs off;
- **height-ahead consensus traffic** — engines call
  :meth:`SyncManager.note_remote_height` when a validator's message
  implies a chain longer than ours (a pre-prepare, prepare, or commit
  for a height we cannot reach, or a committed-block broadcast beyond
  our head).  Under pipelined PBFT, consensus messages up to
  ``pipeline_depth`` heights ahead are *routine* — the engine only
  forwards hints for heights beyond its pipeline window, so the fetch
  machinery is not spun up for blocks that are not committed anywhere
  yet.

Fetching is a single in-flight ranged request at a time with a
per-request timeout, bounded per-provider retries, exponential backoff
with deterministic jitter, and failover to alternate providers.  A
provider that repeatedly times out has its claimed height forgotten
(it will re-announce when it is alive again), which also defuses
phantom-height claims from byzantine nodes.  Every fetched block is
verified before apply: structural integrity and hash-chain linkage
always, plus the engine's own proof check
(:meth:`~repro.chain.consensus.base.ConsensusEngine.verify_synced_block`
— a stored 2f+1 commit certificate for PBFT, the expected-leader check
for PoA).  Blocks that arrive from consensus ahead of the gap are
buffered in :attr:`SyncManager._future` and drained in order once the
gap closes.

All timing and jitter come from the shared simulator and a
``random.Random`` seeded from the node id, so runs remain a pure
function of their seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.chain.block import Block
from repro.chain.transaction import signature_items
from repro.crypto.batch import batch_verification_enabled, verify_many
from repro.crypto.keys import verify_signature
from repro.obs import MetricsRegistry, ObsView, metric_attr
from repro.obs.trace import Span
from repro.simnet.events import Event
from repro.simnet.network import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.chain.peer import Peer

__all__ = ["SyncManager", "SyncMetrics", "KIND_ANNOUNCE", "KIND_REQUEST", "KIND_RESPONSE"]

KIND_ANNOUNCE = "sync-announce"
KIND_REQUEST = "sync-request"
KIND_RESPONSE = "sync-response"


def _announce_message(node_id: str, height: int, head_hash: str) -> bytes:
    """Canonical byte string covered by an announcement signature."""
    return f"sync-announce|{node_id}|{height}|{head_hash}".encode()


class SyncMetrics(ObsView):
    """Counters the recovery benchmarks and chaos tests read.

    Attribute API unchanged from the seed dataclass; values live in the
    peer's shared :class:`~repro.obs.registry.MetricsRegistry` under a
    ``peer=<node_id>`` label (see :class:`repro.obs.views.ObsView`).
    """

    announcements_sent = metric_attr("sync.announcements_sent")
    announcements_verified = metric_attr("sync.announcements_verified")
    announcements_rejected = metric_attr("sync.announcements_rejected")
    requests_sent = metric_attr("sync.requests_sent")
    responses_served = metric_attr("sync.responses_served")
    retries = metric_attr("sync.retries")
    timeouts = metric_attr("sync.timeouts")
    provider_failovers = metric_attr("sync.provider_failovers")
    stale_responses = metric_attr("sync.stale_responses")
    blocks_synced = metric_attr("sync.blocks_synced")
    invalid_blocks = metric_attr("sync.invalid_blocks")
    buffered_future = metric_attr("sync.buffered_future")
    syncs_completed = metric_attr("sync.syncs_completed")
    lag_time_total = metric_attr("sync.lag_time_total")
    max_lag_blocks = metric_attr("sync.max_lag_blocks")
    #: Blocks the durable store acknowledged but could not recover after
    #: a crash (torn/corrupt records) — re-fetched through this manager.
    store_truncated_blocks = metric_attr("sync.store_truncated_blocks")

    def __init__(self, registry: MetricsRegistry | None = None, peer: str = ""):
        super().__init__(registry, peer=peer)
        #: (lag_blocks, seconds) per completed catch-up, for latency
        #: tables; the same durations also feed the ``phase.sync_fetch``
        #: histogram for the percentile report.
        self.sync_durations: list[tuple[int, float]] = []
        self._catchup = self.registry.histogram("phase.sync_fetch", **self.labels)

    def record_catchup(self, lag_blocks: int, duration: float) -> None:
        self.syncs_completed += 1
        self.lag_time_total += duration
        self.sync_durations.append((lag_blocks, duration))
        self._catchup.observe(duration)


@dataclass
class _InFlight:
    """The single outstanding ranged fetch."""

    req_id: str
    provider: str
    start: int
    end: int
    timer: Event
    span: Span | None = None


class SyncManager:
    """Detects lag, fetches verified block ranges, applies them in order."""

    #: At most this many blocks per sync-response (bounds message size).
    MAX_BATCH = 64
    #: Buffered future blocks beyond the gap (bounds memory under floods).
    FUTURE_WINDOW = 256
    #: Consecutive timeouts against one provider before failing over.
    PROVIDER_PATIENCE = 2

    def __init__(
        self,
        peer: "Peer",
        announce_interval: float = 2.0,
        request_timeout: float = 1.5,
        backoff_base: float = 0.5,
        backoff_factor: float = 2.0,
        backoff_cap: float = 8.0,
        jitter: float = 0.25,
    ):
        self.peer = peer
        self.announce_interval = announce_interval
        self.request_timeout = request_timeout
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.metrics = SyncMetrics(registry=peer.obs, peer=peer.node_id)
        self.rng = random.Random(f"sync:{peer.node_id}")
        self.stopped = False
        #: node id -> highest height it has credibly claimed to hold.
        self.known_heights: dict[str, int] = {}
        #: node id -> pinned announcement public key (trust on first use).
        self._announced_keys: dict[str, bytes] = {}
        #: height -> (block, proof) buffered until the gap below closes.
        self._future: dict[int, tuple[Block, Any]] = {}
        self._inflight: _InFlight | None = None
        self._announce_event: Event | None = None
        self._retry_event: Event | None = None
        self._req_counter = 0
        self._round_failures = 0
        self._provider_timeouts: dict[str, int] = {}
        self._lag_since: float | None = None
        self._lag_from_height: int | None = None
        #: cache: (height, head_hash) -> signature, so steady-state
        #: announcements cost no repeated Ed25519 signing.
        self._signature_cache: tuple[tuple[int, str], bytes] | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Begin the periodic announcement loop (idempotent)."""
        if self._announce_event is None and not self.stopped:
            self._schedule_announce()

    def stop(self) -> None:
        self.stopped = True
        if self._announce_event is not None:
            self._announce_event.cancel()
            self._announce_event = None
        self._cancel_inflight()

    def on_restart(self, report: Any = None) -> None:
        """Drop volatile sync state after a simulated process restart.

        *report* is the storage backend's
        :class:`~repro.chain.store.RecoveryReport` when the peer
        recovered through a durable store (``None`` for the in-memory
        backend).  A recovery that had to truncate damaged log records is
        recorded here: those blocks are gone locally and it is this
        manager's job to re-fetch them, so the loss is surfaced as sync
        lag metrics rather than silently absorbed.
        """
        self._cancel_inflight()
        self._future.clear()
        self.known_heights.clear()
        self._provider_timeouts.clear()
        self._round_failures = 0
        self._lag_since = None
        self._lag_from_height = None
        if report is not None:
            lost = len(getattr(report, "missing_acked", {}) or {})
            if lost:
                self.metrics.store_truncated_blocks += lost
                # Treat the truncation like detected lag from the moment
                # of restart: the catch-up duration metrics then cover
                # re-fetching what the disk lost.
                self._lag_since = self.peer.sim.now
                self._lag_from_height = self.peer.ledger.height
        # The announce loop keeps its schedule: a restarted process would
        # re-arm the same timer on boot.
        self.start()

    def _cancel_inflight(self) -> None:
        if self._inflight is not None:
            self._inflight.timer.cancel()
            if self._inflight.span is not None:
                self.peer.tracer.finish(self._inflight.span, outcome="cancelled")
            self._inflight = None
        if self._retry_event is not None:
            self._retry_event.cancel()
            self._retry_event = None

    # -- lag detection -----------------------------------------------------

    def _schedule_announce(self) -> None:
        self._announce_event = self.peer.sim.schedule(
            self.announce_interval, self._announce_tick,
            label=f"sync-announce:{self.peer.node_id}",
        )

    def _announce_tick(self) -> None:
        self._announce_event = None
        if self.stopped:
            return
        peer = self.peer
        if not peer.crashed:
            height = peer.ledger.height
            head_hash = peer.ledger.head.block_hash
            key = (height, head_hash)
            if self._signature_cache is None or self._signature_cache[0] != key:
                signature = peer.keypair.sign(
                    _announce_message(peer.node_id, height, head_hash)
                )
                self._signature_cache = (key, signature)
            peer.broadcast(
                KIND_ANNOUNCE,
                {
                    "node_id": peer.node_id,
                    "height": height,
                    "head_hash": head_hash,
                    "public_key": peer.keypair.public_key,
                    "signature": self._signature_cache[1],
                },
            )
            self.metrics.announcements_sent += 1
        self._schedule_announce()

    def _on_announce(self, message: Message) -> None:
        payload = message.payload
        src = message.src
        height = payload.get("height")
        if not isinstance(height, int) or payload.get("node_id") != src:
            self.metrics.announcements_rejected += 1
            return
        if height <= self.peer.ledger.height:
            # Nothing to fetch from this node; remember it only so the
            # provider chooser can skip it.  No signature check needed —
            # a lie here can never trigger a fetch.
            self.known_heights[src] = height
            return
        public_key = payload.get("public_key")
        pinned = self._announced_keys.get(src)
        if pinned is not None and pinned != public_key:
            self.metrics.announcements_rejected += 1
            return
        if not isinstance(public_key, bytes) or not verify_signature(
            public_key,
            _announce_message(src, height, payload.get("head_hash", "")),
            payload.get("signature", b""),
        ):
            self.metrics.announcements_rejected += 1
            return
        self._announced_keys.setdefault(src, public_key)
        self.metrics.announcements_verified += 1
        self.note_remote_height(src, height)

    def note_remote_height(self, src: str, height: int) -> None:
        """A node credibly holds chain up to *height*; sync if we lag."""
        if src == self.peer.node_id:
            return
        if height > self.known_heights.get(src, -1):
            self.known_heights[src] = height
        self.maybe_sync()

    def is_lagging(self) -> bool:
        """Does any known node hold a longer chain than ours?"""
        return self._sync_target() > self.peer.ledger.height

    def _sync_target(self) -> int:
        target = max(self.known_heights.values(), default=0)
        if self._future:
            target = max(target, max(self._future))
        return target

    # -- block intake ------------------------------------------------------

    def offer_block(self, block: Block, proof: Any, src: str) -> None:
        """A consensus-committed block arrived from *src* (possibly ahead).

        Next-in-line blocks are verified and applied immediately; blocks
        beyond the gap are buffered and a ranged fetch is kicked off for
        the missing prefix.
        """
        height = block.height
        if height <= self.peer.ledger.height:
            return
        if src != self.peer.node_id and height > self.known_heights.get(src, -1):
            # Never count ourselves as a provider: a self-offer (possible
            # under pipelining, where decided blocks sit ahead of the
            # applied head) must not make is_lagging() true against our
            # own claim and stall the proposer.
            self.known_heights[src] = height
        if height == self.peer.ledger.height + 1:
            if self._verify_and_apply(block, proof):
                self._drain_future()
            self._check_caught_up()
            return
        if len(self._future) < self.FUTURE_WINDOW or height < max(self._future):
            if len(self._future) >= self.FUTURE_WINDOW:
                del self._future[max(self._future)]
            if height not in self._future:
                self.metrics.buffered_future += 1
            self._future[height] = (block, proof)
            self._observe_future()
        self.maybe_sync()

    def _verify_and_apply(self, block: Block, proof: Any) -> bool:
        peer = self.peer
        try:
            block.verify_structure()
        except Exception:
            self.metrics.invalid_blocks += 1
            return False
        if block.prev_hash != peer.ledger.head.block_hash:
            self.metrics.invalid_blocks += 1
            return False
        if not peer.engine.verify_synced_block(block, proof):
            self.metrics.invalid_blocks += 1
            return False
        peer.engine.on_synced_block(block, proof)
        peer.commit_block(block)
        self.metrics.blocks_synced += 1
        return True

    def _drain_future(self) -> None:
        peer = self.peer
        while peer.ledger.height + 1 in self._future:
            block, proof = self._future.pop(peer.ledger.height + 1)
            if not self._verify_and_apply(block, proof):
                break
        for height in [h for h in self._future if h <= peer.ledger.height]:
            del self._future[height]
        self._observe_future()

    def _observe_future(self) -> None:
        self.peer.obs.gauge("sync.future_buffer", peer=self.peer.node_id).set(
            len(self._future)
        )

    # -- fetch machinery ---------------------------------------------------

    def maybe_sync(self) -> None:
        """Start (or continue) a ranged fetch if we are behind."""
        if self.stopped or self.peer.crashed or self._inflight is not None:
            return
        if self._retry_event is not None:
            return  # a backoff wait is in progress; don't defeat it
        target = self._sync_target()
        height = self.peer.ledger.height
        if target <= height:
            self._check_caught_up()
            return
        if self._lag_since is None:
            self._lag_since = self.peer.sim.now
            self._lag_from_height = height
            self.metrics.max_lag_blocks = max(
                self.metrics.max_lag_blocks, target - height
            )
        provider = self._choose_provider(height)
        if provider is None:
            return
        self._send_request(provider, height + 1, min(target, height + self.MAX_BATCH))

    def _choose_provider(self, height: int) -> str | None:
        """Deterministically pick the live-looking node with the most chain."""
        candidates = [
            (claimed, node)
            for node, claimed in self.known_heights.items()
            if claimed > height
        ]
        if not candidates:
            return None
        best_height = max(claimed for claimed, _ in candidates)
        best = sorted(node for claimed, node in candidates if claimed == best_height)
        # Rotate among equally-tall providers as failures accumulate so a
        # silent best provider does not absorb every retry.
        return best[self._round_failures % len(best)]

    def _send_request(self, provider: str, start: int, end: int) -> None:
        self._req_counter += 1
        req_id = f"{self.peer.node_id}#{self._req_counter}"
        timer = self.peer.sim.schedule(
            self.request_timeout,
            lambda: self._on_timeout(req_id),
            label=f"sync-timeout:{self.peer.node_id}",
        )
        span = self.peer.tracer.start(
            "sync.fetch", peer=self.peer.node_id, provider=provider,
            start=start, end=end, req_id=req_id,
        )
        self._inflight = _InFlight(
            req_id=req_id, provider=provider, start=start, end=end, timer=timer, span=span
        )
        self.metrics.requests_sent += 1
        if self._round_failures:
            self.metrics.retries += 1
        self.peer.send(provider, KIND_REQUEST, {"req_id": req_id, "start": start, "end": end})

    def _on_timeout(self, req_id: str) -> None:
        inflight = self._inflight
        if inflight is None or inflight.req_id != req_id:
            return
        self._inflight = None
        if inflight.span is not None:
            self.peer.tracer.finish(inflight.span, outcome="timeout")
        if self.stopped or self.peer.crashed:
            return
        self.metrics.timeouts += 1
        self._round_failures += 1
        provider = inflight.provider
        strikes = self._provider_timeouts.get(provider, 0) + 1
        self._provider_timeouts[provider] = strikes
        if strikes >= self.PROVIDER_PATIENCE:
            # Forget this provider's claim; it must re-announce to be
            # chosen again.  This is the failover path, and it also
            # un-wedges us from phantom heights a byzantine node claimed.
            self.known_heights.pop(provider, None)
            self._provider_timeouts.pop(provider, None)
            self.metrics.provider_failovers += 1
        delay = min(
            self.backoff_base * self.backoff_factor ** min(self._round_failures - 1, 6),
            self.backoff_cap,
        )
        delay *= 1.0 + self.jitter * self.rng.random()
        self._retry_event = self.peer.sim.schedule(
            delay, self._retry_fire, label=f"sync-retry:{self.peer.node_id}"
        )

    def _retry_fire(self) -> None:
        self._retry_event = None
        self.maybe_sync()

    def _on_request(self, message: Message) -> None:
        """Serve a ranged fetch from our committed chain."""
        payload = message.payload
        peer = self.peer
        start = max(1, int(payload["start"]))
        end = min(int(payload["end"]), peer.ledger.height, start + self.MAX_BATCH - 1)
        blocks = [
            {"block": peer.ledger.block(h), "proof": peer.engine.sync_proof(h)}
            for h in range(start, end + 1)
        ]
        self.metrics.responses_served += 1
        peer.send(
            message.src,
            KIND_RESPONSE,
            {"req_id": payload["req_id"], "height": peer.ledger.height, "blocks": blocks},
        )

    def _on_response(self, message: Message) -> None:
        inflight = self._inflight
        payload = message.payload
        if inflight is None or inflight.req_id != payload.get("req_id"):
            self.metrics.stale_responses += 1
            return
        inflight.timer.cancel()
        self._inflight = None
        if inflight.span is not None:
            self.peer.tracer.finish(
                inflight.span, outcome="response",
                n_blocks=len(payload.get("blocks", ())),
            )
        provider = message.src
        self._provider_timeouts.pop(provider, None)
        self._round_failures = 0
        reported = payload.get("height")
        if isinstance(reported, int):
            # The provider's actual height replaces whatever it (or a
            # height-ahead message) previously claimed.
            self.known_heights[provider] = reported
        pending = [
            entry["block"]
            for entry in payload.get("blocks", ())
            if isinstance(entry, dict)
            and isinstance(entry.get("block"), Block)
            and entry["block"].height > self.peer.ledger.height
        ]
        if batch_verification_enabled() and pending:
            # One batched pass over every signature in the fetched range;
            # the per-block verify/commit path below hits the warmed cache.
            verify_many(
                [item for block in pending for item in signature_items(block.transactions)],
                registry=self.peer.obs,
                peer=self.peer.node_id,
            )
        clean = True
        for entry in payload.get("blocks", ()):
            block = entry["block"]
            if block.height <= self.peer.ledger.height:
                continue
            if block.height != self.peer.ledger.height + 1:
                clean = False
                break
            if not self._verify_and_apply(block, entry.get("proof")):
                clean = False
                break
        if not clean:
            # Bad or gapped response: drop the provider's claim so the
            # next round fails over to someone else.
            self.known_heights.pop(provider, None)
            self.metrics.provider_failovers += 1
        self._drain_future()
        self.maybe_sync()

    def _check_caught_up(self) -> None:
        if self._lag_since is None:
            return
        if self._sync_target() > self.peer.ledger.height or self._future:
            return
        duration = self.peer.sim.now - self._lag_since
        lag_blocks = self.peer.ledger.height - (self._lag_from_height or 0)
        self.metrics.record_catchup(lag_blocks, duration)
        self._lag_since = None
        self._lag_from_height = None

    # -- dispatch ----------------------------------------------------------

    def on_message(self, message: Message) -> bool:
        if message.kind == KIND_ANNOUNCE:
            self._on_announce(message)
        elif message.kind == KIND_REQUEST:
            self._on_request(message)
        elif message.kind == KIND_RESPONSE:
            self._on_response(message)
        else:
            return False
        return True
