"""Seeded chaos-engineering schedules for the simulated network.

:class:`ChaosSchedule` extends :class:`~repro.simnet.failure.
FailureSchedule` with *generated* fault plans: randomized crash/recover
windows, partition/heal windows, latency spikes, and rogue vote-flooder
nodes, all drawn from one ``random.Random(seed)`` so every run is fully
deterministic and any violation found by the invariant auditor
(:mod:`repro.chain.audit`) can be replayed from its seed alone.

:class:`VoteFlooder` is a network node that is **not** in any validator
set and attacks a PBFT deployment three ways:

- ``forge``  — broadcasts prepares/commits for a fabricated digest at
  plausible and garbage (view, height) coordinates (exercises both the
  membership rule and the round-window memory bound);
- ``echo``   — re-broadcasts every prepare/commit it observes under its
  own identity (pre-fix, this let 1 honest vote + flooder echoes reach
  "quorum");
- ``view-change`` — votes for view changes it has no standing to vote
  for (pre-fix, flooders could depose a healthy primary).

A correct PBFT implementation ignores all of it; the regression tests in
``tests/chain/test_pbft_membership.py`` show the seed engine did not.

This module deliberately does not import :mod:`repro.chain` (the simnet
layer sits below the chain layer); the PBFT message kinds are mirrored
as literals and pinned by test assertions.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.simnet.failure import FailureEvent, FailureSchedule
from repro.simnet.latency import ScaledLatency
from repro.simnet.network import Message, NetworkNode

__all__ = ["ChaosSchedule", "VoteFlooder"]

# Mirrors of the PBFT wire kinds (see repro/chain/consensus/pbft.py);
# tests/chain/test_pbft_membership.py pins these against the engine.
_PBFT_PREPARE = "pbft-prepare"
_PBFT_COMMIT = "pbft-commit"
_PBFT_VIEW_CHANGE = "pbft-view-change"

_FORGED_DIGEST = "f" * 64


class VoteFlooder(NetworkNode):
    """A non-validator that floods forged PBFT votes.

    The flooder passively tracks the highest (view, height) it observes
    on the wire so its forged votes land inside the engines' acceptance
    windows — the strongest position an outsider can attack from without
    spoofing ``src`` (which the simulator treats as authenticated).
    """

    def __init__(
        self,
        node_id: str,
        rng: random.Random | None = None,
        modes: Sequence[str] = ("forge", "echo", "view-change"),
        forged_digest: str = _FORGED_DIGEST,
        burst: int = 3,
    ):
        super().__init__(node_id)
        self.rng = rng or random.Random(0)
        self.modes = tuple(modes)
        self.forged_digest = forged_digest
        self.burst = burst
        self.active = True
        self.messages_flooded = 0
        self.seen_view = 0
        self.seen_height = 0
        self._echoed: set[tuple[str, int, int, str]] = set()

    def on_message(self, message: Message) -> None:
        if message.kind not in (_PBFT_PREPARE, _PBFT_COMMIT):
            return
        payload = message.payload
        self.seen_view = max(self.seen_view, payload["view"])
        self.seen_height = max(self.seen_height, payload["height"])
        if not self.active or "echo" not in self.modes:
            return
        key = (message.kind, payload["view"], payload["height"], payload["digest"])
        # Echo each observed vote once: flooders would otherwise echo each
        # other's echoes forever, and the dedup set also bounds memory.
        if key in self._echoed or len(self._echoed) >= 100_000:
            return
        self._echoed.add(key)
        self.broadcast(message.kind, dict(payload))
        self.messages_flooded += 1

    def flood_burst(self) -> None:
        """One burst of forged votes aimed at the current consensus round."""
        if not self.active or self.crashed:
            return
        if "forge" in self.modes:
            for offset in range(1, self.burst + 1):
                payload = {
                    "view": self.seen_view,
                    "height": self.seen_height + offset,
                    "digest": self.forged_digest,
                }
                self.broadcast(_PBFT_PREPARE, payload)
                self.broadcast(_PBFT_COMMIT, dict(payload))
                self.messages_flooded += 2
            # Garbage coordinates: exercises the round-window memory bound.
            garbage = {
                "view": self.seen_view + self.rng.randint(100, 10_000),
                "height": self.seen_height + self.rng.randint(100, 10_000),
                "digest": self.forged_digest,
            }
            self.broadcast(_PBFT_PREPARE, garbage)
            self.messages_flooded += 1
        if "view-change" in self.modes:
            for bump in (1, 2):
                self.broadcast(_PBFT_VIEW_CHANGE, {"new_view": self.seen_view + bump})
                self.messages_flooded += 1

    def stop(self) -> None:
        self.active = False


class ChaosSchedule(FailureSchedule):
    """A :class:`FailureSchedule` that can *generate* its fault plan.

    All randomness comes from ``random.Random(seed)``, so a plan is a
    pure function of ``(seed, arguments)``.  Every injected fault is
    appended to ``self.log`` as it fires, which
    :func:`repro.chain.audit.recovery_latencies` consumes.
    """

    def __init__(self, sim, network, seed: int = 0):
        super().__init__(sim=sim, network=network)
        self.seed = seed
        self.rng = random.Random(seed)
        self.flooders: list[VoteFlooder] = []

    # -- additional primitives ------------------------------------------

    def latency_spike_at(self, time: float, duration: float, factor: float) -> None:
        """Multiply all link delays by *factor* during the window."""

        def spike() -> None:
            base = self.network.latency
            wrapper = ScaledLatency(base, factor)
            self.network.latency = wrapper
            self.log.append(FailureEvent(time=time, action="latency-spike", target=f"x{factor:g}"))

            def restore() -> None:
                # Only unwind our own wrapper; leave any later override alone.
                if self.network.latency is wrapper:
                    self.network.latency = base
                self.log.append(
                    FailureEvent(time=time + duration, action="latency-restore", target=f"x{factor:g}")
                )

            self.sim.schedule(duration, restore)

        self.sim.schedule_at(time, spike)

    def flooder_at(
        self,
        time: float,
        duration: float,
        node_id: str | None = None,
        period: float = 0.5,
        modes: Sequence[str] = ("forge", "echo", "view-change"),
        burst: int = 3,
    ) -> VoteFlooder:
        """Attach a rogue :class:`VoteFlooder` that bursts every *period*
        seconds during ``[time, time + duration]``, then goes quiet."""
        node_id = node_id or f"rogue-{len(self.flooders)}"
        flooder = VoteFlooder(
            node_id,
            rng=random.Random(self.rng.randrange(2**31)),
            modes=modes,
            burst=burst,
        )
        flooder.active = False
        self.network.add_node(flooder)
        self.flooders.append(flooder)

        def start() -> None:
            flooder.active = True
            self.log.append(FailureEvent(time=time, action="rogue-start", target=node_id))
            self._burst_loop(flooder, period, time + duration)

        def stop() -> None:
            flooder.stop()
            self.log.append(FailureEvent(time=time + duration, action="rogue-stop", target=node_id))

        self.sim.schedule_at(time, start)
        self.sim.schedule_at(time + duration, stop)
        return flooder

    def _burst_loop(self, flooder: VoteFlooder, period: float, until: float) -> None:
        if not flooder.active or self.sim.now > until:
            return
        flooder.flood_burst()
        self.sim.schedule(period, lambda: self._burst_loop(flooder, period, until))

    # -- generated plans -------------------------------------------------

    def plan(
        self,
        duration: float,
        validators: Sequence[str],
        scenarios: Iterable[str] = ("crash", "partition", "latency", "rogue"),
        max_crashed: int = 1,
    ) -> int:
        """Generate a randomized fault plan over ``[0, duration]``.

        Crash windows are sequential (never more than *max_crashed*
        validators down at once) and every fault is undone before
        *duration*, so a settle period after the plan ends must restore
        full liveness — which is exactly what the chaos tests assert.

        Each crash window ends in one of two modes, drawn from the seed:
        a crash-*pause* (``recover_at`` — in-memory state intact) or a
        crash-*restart* (``restart_at`` — volatile state wiped, world
        state replayed from the durable ledger).

        The ``"disk"`` scenario (off by default — it only bites when
        peers run a durable store) pairs each crash window with a drawn
        crash-consistency fault: a torn write or lying-drive partial
        flush armed just before the crash, or a bit flip landing in the
        log/snapshot while the node is down.  Because disk faults attach
        to crash windows, ``"disk"`` requires ``"crash"`` — enabling it
        alone would silently schedule nothing and masquerade as a
        passing crash-consistency run, so it raises instead.  Its rng
        draws happen only when the scenario is enabled and strictly
        *after* the draws the default scenarios make, so enabling
        ``"disk"`` never perturbs an existing seed's
        crash/partition/latency/rogue plan.

        Returns the number of disk faults armed (0 when ``"disk"`` is
        not enabled, or when every window drew ``"none"``).
        """
        validators = list(validators)
        scenarios = set(scenarios)
        if "disk" in scenarios and "crash" not in scenarios:
            raise ValueError(
                'the "disk" chaos scenario attaches faults to crash windows; '
                'enable "crash" alongside it (scenarios without "crash" would '
                "inject zero disk faults)"
            )
        crash_windows: list[tuple[float, float, str]] = []
        if "crash" in scenarios:
            cursor = self.rng.uniform(0.05, 0.2) * duration
            while cursor < 0.7 * duration:
                victim = self.rng.choice(validators)
                down = self.rng.uniform(0.05, 0.2) * duration
                down = min(down, 0.95 * duration - cursor)
                self.crash_at(cursor, victim)
                if self.rng.random() < 0.5:
                    self.restart_at(cursor + down, victim)
                else:
                    self.recover_at(cursor + down, victim)
                crash_windows.append((cursor, cursor + down, victim))
                cursor += down + self.rng.uniform(0.05, 0.25) * duration
        if "partition" in scenarios:
            start = self.rng.uniform(0.2, 0.5) * duration
            length = self.rng.uniform(0.1, 0.3) * duration
            isolated = set(self.rng.sample(validators, self.rng.randint(1, max(1, len(validators) // 3))))
            self.partition_at(start, isolated)
            self.heal_at(min(start + length, 0.95 * duration))
        if "latency" in scenarios:
            start = self.rng.uniform(0.1, 0.6) * duration
            length = self.rng.uniform(0.05, 0.2) * duration
            self.latency_spike_at(start, length, factor=self.rng.uniform(3.0, 8.0))
        if "rogue" in scenarios:
            for index in range(self.rng.randint(1, 2)):
                start = self.rng.uniform(0.05, 0.3) * duration
                self.flooder_at(
                    start,
                    duration=self.rng.uniform(0.3, 0.6) * duration,
                    period=self.rng.uniform(0.3, 1.0),
                )
        disk_faults = 0
        if "disk" in scenarios:
            # Drawn last so the plan for the default scenarios is
            # byte-identical with and without disk faults enabled.
            for start, end, victim in crash_windows:
                fault = self.rng.choice(("torn-write", "partial-flush", "bit-flip", "none"))
                # Arm slightly before the crash event: same-time events
                # fire in schedule order and the crash was scheduled first.
                arm_at = max(0.0, start - 1e-3)
                if fault == "torn-write":
                    self.torn_write_at(arm_at, victim)
                elif fault == "partial-flush":
                    self.partial_flush_at(arm_at, victim, k=self.rng.randint(1, 3))
                elif fault == "bit-flip":
                    self.bitflip_at(
                        self.rng.uniform(start, end),
                        victim,
                        artifact=self.rng.choice(("log", "snapshot")),
                    )
                if fault != "none":
                    disk_faults += 1
        return disk_faults
