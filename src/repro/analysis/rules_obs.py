"""OBS — metric hygiene across the whole tree.

One :class:`~repro.obs.registry.MetricsRegistry` is shared per network,
and metrics are keyed by ``(kind, name, labels)``.  Two call sites that
disagree about a metric's kind or label set silently split one logical
series into several, which corrupts every report built from it.  These
rules cross-check every *literal-named* registry call site in the tree
(dynamic names are unknowable statically and are skipped).

OBS001 (error)  the same metric name registered as two different kinds
                (e.g. ``counter("x")`` here, ``histogram("x")`` there).
OBS002 (warn)   the same (name, kind) registered with different label
                key-sets across call sites (calls that splat ``**labels``
                are skipped — their keys are dynamic).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, register

__all__ = ["MetricKindRule", "MetricLabelRule"]

_REGISTRY_METHODS = {"counter", "gauge", "histogram"}
#: histogram() takes a non-label tuning kwarg.
_NON_LABEL_KWARGS = {"capacity"}


class _CallSite:
    __slots__ = ("mod", "node", "kind", "name", "label_keys", "dynamic_labels")

    def __init__(self, mod: ModuleInfo, node: ast.Call, kind: str, name: str):
        self.mod = mod
        self.node = node
        self.kind = kind
        self.name = name
        self.label_keys: frozenset[str] = frozenset(
            kw.arg for kw in node.keywords
            if kw.arg is not None and kw.arg not in _NON_LABEL_KWARGS
        )
        self.dynamic_labels = any(kw.arg is None for kw in node.keywords)


class _MetricCollector(Rule):
    """Shared collection: registry call sites with literal names."""

    def __init__(self, config):
        super().__init__(config)
        self.sites: list[_CallSite] = []

    def check_module(self, mod: ModuleInfo) -> Iterator[Finding]:
        if mod.module.startswith("repro.obs"):
            return iter(())  # the registry implementation, not call sites
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _REGISTRY_METHODS:
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            self.sites.append(_CallSite(mod, node, func.attr, first.value))
        return iter(())


@register
class MetricKindRule(_MetricCollector):
    rule_id = "OBS001"
    severity = "error"
    summary = "metric name registered under conflicting kinds"

    def finish(self, modules: list[ModuleInfo]) -> Iterator[Finding]:
        # counter/gauge share a value model; conflict is counter-or-gauge
        # versus histogram.
        kind_of = lambda k: "histogram" if k == "histogram" else "counter"
        first_by_name: dict[str, _CallSite] = {}
        for site in self.sites:
            prior = first_by_name.get(site.name)
            if prior is None:
                first_by_name[site.name] = site
            elif kind_of(prior.kind) != kind_of(site.kind):
                yield self.finding(
                    site.mod, site.node,
                    f"metric `{site.name}` registered as {site.kind} here but "
                    f"as {prior.kind} at {prior.mod.path}:{prior.node.lineno}; "
                    "one logical series must have one kind",
                )


@register
class MetricLabelRule(_MetricCollector):
    rule_id = "OBS002"
    severity = "warn"
    summary = "inconsistent label keys for one metric"

    def finish(self, modules: list[ModuleInfo]) -> Iterator[Finding]:
        first_by_key: dict[tuple[str, str], _CallSite] = {}
        for site in self.sites:
            if site.dynamic_labels:
                continue
            key = (site.name, "histogram" if site.kind == "histogram" else "counter")
            prior = first_by_key.get(key)
            if prior is None:
                first_by_key[key] = site
            elif prior.label_keys != site.label_keys:
                here = ", ".join(sorted(site.label_keys)) or "<none>"
                there = ", ".join(sorted(prior.label_keys)) or "<none>"
                yield self.finding(
                    site.mod, site.node,
                    f"metric `{site.name}` labelled {{{here}}} here but "
                    f"{{{there}}} at {prior.mod.path}:{prior.node.lineno}; "
                    "label keys must agree or the series splits",
                )
