"""Follow-graph topologies for the social simulator.

All generators return a directed graph whose edge (u, v) means
"v follows u" — i.e. content posted by u flows to v.  Three families
cover the experiments' needs:

- scale-free (Barabási–Albert): realistic degree heavy tail; the
  default propagation substrate,
- small-world (Watts–Strogatz): high clustering control case,
- polarized SBM: two dense communities with sparse cross links, the
  "isolated social groups" of the paper's introduction (Benkler [1]),
  used by the bias and intervention experiments.
"""

from __future__ import annotations

import random

import networkx as nx

from repro.social.agents import SocialAgent

__all__ = [
    "scale_free_follow_graph",
    "small_world_follow_graph",
    "polarized_follow_graph",
    "bind_agents",
    "interconnect",
]


def _directed_from_undirected(graph: nx.Graph, rng: random.Random) -> nx.DiGraph:
    """Orient each undirected edge randomly, doubling ~30% to mutual."""
    directed = nx.DiGraph()
    directed.add_nodes_from(graph.nodes())
    for u, v in graph.edges():
        if rng.random() < 0.5:
            u, v = v, u
        directed.add_edge(u, v)
        if rng.random() < 0.3:
            directed.add_edge(v, u)
    return directed


def scale_free_follow_graph(n_agents: int, attachment: int = 3, seed: int = 0) -> nx.DiGraph:
    """Barabási–Albert preferential attachment, randomly oriented."""
    rng = random.Random(seed)
    base = nx.barabasi_albert_graph(n_agents, attachment, seed=seed)
    return _directed_from_undirected(base, rng)


def small_world_follow_graph(
    n_agents: int, k_neighbors: int = 6, rewire: float = 0.1, seed: int = 0
) -> nx.DiGraph:
    """Watts–Strogatz ring lattice with rewiring, randomly oriented."""
    rng = random.Random(seed)
    base = nx.watts_strogatz_graph(n_agents, k_neighbors, rewire, seed=seed)
    return _directed_from_undirected(base, rng)


def polarized_follow_graph(
    n_agents: int,
    p_within: float = 0.02,
    p_across: float = 0.001,
    seed: int = 0,
) -> nx.DiGraph:
    """Two-community stochastic block model ("echo chambers").

    Node attribute ``community`` is 0 or 1; experiments read it to plant
    polarized validators and to measure cross-community reach.
    """
    half = n_agents // 2
    sizes = [half, n_agents - half]
    base = nx.stochastic_block_model(sizes, [[p_within, p_across], [p_across, p_within]], seed=seed)
    rng = random.Random(seed)
    directed = _directed_from_undirected(base, rng)
    for node in directed.nodes():
        directed.nodes[node]["community"] = 0 if node < half else 1
    return directed


def bind_agents(graph: nx.DiGraph, agents: list[SocialAgent]) -> dict[int, SocialAgent]:
    """Attach one agent per node; copies community labels onto agents.

    Returns the node -> agent mapping and stores each agent under the
    node's ``agent`` attribute.
    """
    if len(agents) != graph.number_of_nodes():
        raise ValueError(
            f"{len(agents)} agents for {graph.number_of_nodes()} nodes — must match"
        )
    mapping: dict[int, SocialAgent] = {}
    for node, agent in zip(sorted(graph.nodes()), agents):
        community = graph.nodes[node].get("community", 0)
        agent.community = community
        graph.nodes[node]["agent"] = agent
        mapping[node] = agent
    return mapping


def interconnect(graph: nx.DiGraph, agents: list[SocialAgent]) -> None:
    """Add mutual follow edges between all of *agents* (already bound).

    Used to wire botnet rings: coordinated accounts follow each other so
    each member sees — and can amplify — every other member's posts.
    """
    wanted = {agent.agent_id for agent in agents}
    nodes = [
        node for node, attrs in graph.nodes(data=True)
        if attrs.get("agent") is not None and attrs["agent"].agent_id in wanted
    ]
    if len(nodes) != len(wanted):
        raise ValueError("some agents are not bound to graph nodes")
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            graph.add_edge(u, v)
            graph.add_edge(v, u)
