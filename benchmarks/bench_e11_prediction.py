"""E11 — §VII future work: predicting fake news before it propagates.

Two stages of early warning, evaluated at increasing information levels:

- share count 0: content + author ledger history (FakeRiskPredictor),
- rounds 1/2/3 of cascade telemetry: virality prediction
  (ViralityPredictor), AUC versus "will this lineage reach the top
  reach quartile".

The shape: AUC rises with observation rounds, but even the zero-share
predictor is far above chance — the paper's argument that the ledger
enables intervention *before* dispute.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.core import FakeRiskPredictor, ViralityPredictor, early_cascade_features
from repro.corpus import CorpusGenerator
from repro.ml import roc_auc
from repro.social import CascadeRunner, build_social_world
import networkx as nx

N_CASCADES = 48


def _content_stage():
    graph = nx.DiGraph()  # empty ledger: content-only features
    train = CorpusGenerator(seed=1100).labeled_corpus(n_factual=200, n_fake=200)
    test = CorpusGenerator(seed=1101).labeled_corpus(n_factual=80, n_fake=80)
    predictor = FakeRiskPredictor().fit(train.articles, graph)
    risks = predictor.risk(test.articles, graph)
    labels = np.array([int(a.label_fake) for a in test.articles])
    return roc_auc(labels, risks)


def _cascade_stage():
    cascades = []
    for trial in range(N_CASCADES):
        graph, agents, corpus = build_social_world(n_agents=250, seed=1200 + trial)
        hub = max(graph.nodes(), key=lambda n: graph.out_degree(n))
        article = corpus.insertion_fake(corpus.factual(), "troll", 0.0,
                                        n_insertions=(trial % 4) + 1)
        result = CascadeRunner(graph, corpus).run([(hub, article)], n_rounds=10)
        cascades.append((result, article, {a.agent_id: a for a in agents}))
    reaches = [result.reach(article.article_id) for result, article, _ in cascades]
    threshold = int(np.percentile(reaches, 75))
    labels = np.array([int(r >= threshold) for r in reaches])
    aucs = {}
    for upto in (1, 2, 3):
        rows = [
            early_cascade_features(result, article.article_id, agents_by_id, upto_round=upto)
            for result, article, agents_by_id in cascades
        ]
        # Leave-one-out-ish honesty at this scale: split even/odd trials.
        train_idx = list(range(0, N_CASCADES, 2))
        test_idx = list(range(1, N_CASCADES, 2))
        predictor = ViralityPredictor(viral_threshold=threshold).fit(
            [rows[i] for i in train_idx], [reaches[i] for i in train_idx]
        )
        probabilities = predictor.predict_viral([rows[i] for i in test_idx])
        aucs[upto] = roc_auc(labels[test_idx], probabilities)
    return aucs, threshold


def test_e11_early_prediction(benchmark):
    def _all():
        return _content_stage(), _cascade_stage()

    content_auc, (aucs, threshold) = benchmark.pedantic(_all, rounds=1, iterations=1)
    rows = [
        f"share count 0 (content + ledger history): fake-risk AUC = {content_auc:.3f}",
        f"virality target: reach >= {threshold} (top quartile of {N_CASCADES} cascades)",
    ]
    for upto, auc in aucs.items():
        rows.append(f"after round {upto} telemetry: viral-AUC = {auc:.3f}")
    emit(benchmark, "E11 — prediction before propagation", rows)
    assert content_auc > 0.9
    assert all(auc > 0.6 for auc in aucs.values())
