"""E10 — the paper's goal: "factual-sourced reporting can outpace the
spread of fake news".

Workload: fake-vs-factual cascade races (mean of 10 independent
400-agent worlds) under three regimes:

- no platform (baseline — sensational content wins),
- flag-only (damp the fake lineage once detected at round 2),
- flag + promote (also boost the verified-factual lineage — the full
  platform behaviour).

Reports mean final reach of each lineage and the fake's reach advantage;
the crossover — factual overtaking fake — should appear only with the
platform engaged.
"""

from __future__ import annotations

from benchmarks.conftest import emit
from repro.social import run_races

N_TRIALS = 10
N_AGENTS = 400


def _sweep():
    baseline = run_races(n_trials=N_TRIALS, n_agents=N_AGENTS, seed=1000, intervene=False)
    flag_only = run_races(
        n_trials=N_TRIALS, n_agents=N_AGENTS, seed=1000, intervene=True, promotion_boost=1.0
    )
    full = run_races(n_trials=N_TRIALS, n_agents=N_AGENTS, seed=1000, intervene=True)
    return baseline, flag_only, full


def test_e10_propagation_race(benchmark):
    baseline, flag_only, full = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = [f"{'regime':<16} {'factual':>8} {'fake':>8} {'fake advantage':>15}"]
    for name, summary in (
        ("no platform", baseline),
        ("flag only", flag_only),
        ("flag + promote", full),
    ):
        rows.append(
            f"{name:<16} {summary.mean_factual:>8.1f} {summary.mean_fake:>8.1f} "
            f"{summary.fake_advantage:>14.2f}x"
        )
    curve_f = ", ".join(f"{v:.0f}" for v in full.mean_factual_curve[:8])
    curve_k = ", ".join(f"{v:.0f}" for v in full.mean_fake_curve[:8])
    rows.append(f"full-platform mean reach curves  factual: [{curve_f}]  fake: [{curve_k}]")
    emit(benchmark, "E10 — fake vs factual propagation race", rows)
    assert baseline.fake_advantage > 1.0  # fake wins unassisted
    assert flag_only.mean_fake < baseline.mean_fake  # flagging contains
    assert full.fake_advantage < 1.0  # full platform flips the race
    assert full.mean_factual >= baseline.mean_factual
