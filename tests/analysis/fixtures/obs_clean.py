"""Known-clean OBS corpus: one kind and one label set per metric."""


def record_commit(registry, peer: str, latency: float) -> None:
    registry.counter("chain.commits", peer=peer).inc()
    registry.histogram("chain.commit_latency", peer=peer).observe(latency)


def record_sync(registry, peer: str, origin: str) -> None:
    registry.counter("sync.fetches", peer=peer, origin=origin).inc()
    registry.counter("sync.fetches", peer=peer, origin="self").inc()


def record_dynamic(registry, labels: dict) -> None:
    # **splat call sites have unknowable keys; the rule must skip them.
    registry.counter("sync.fetches", **labels).inc()
