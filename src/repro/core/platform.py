"""TrustingNewsPlatform: the integrated system of Fig. 1.

The facade that wires every component together over one blockchain:

- identity registration & verification (accountability root),
- distribution platforms / news rooms / editing workflow,
- the factual database (seed + promotion),
- provenance discovery -> supply-chain recording for every article
  and every social share,
- AI scoring (text ensemble; media fingerprints via repro.ml.deepfake),
- on-chain crowd votes and the hybrid factualness ranking,
- expert mining and accountability tracing off the reconstructed
  supply-chain graph.

Examples and experiments program against this class; everything it does
lands on the chain, so *all* platform analytics are reconstructions
from the ledger rather than trusted in-memory state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Sequence

import networkx as nx

from repro.chain.local import LocalChain
from repro.chain.transaction import TxReceipt
from repro.corpus.articles import Article
from repro.crypto.hashing import sha256_hex
from repro.crypto.keys import KeyPair
from repro.core.conduct import ConductContract
from repro.core.crowdsourcing import VoteContract
from repro.core.ecosystem import TokenContract
from repro.core.experts import ExpertFinder
from repro.core.factualdb import PROMOTION_THRESHOLD, FactualDatabaseContract
from repro.core.governance import PlatformGovernanceContract
from repro.core.identity import IdentityContract
from repro.core.media import MediaRegistryContract, MediaVerifier
from repro.core.newsroom import NewsRoomContract
from repro.core.toolmarket import ToolMarketContract
from repro.core.provenance import ProvenanceIndex
from repro.core.ranking import ArticleSignals, FactualnessRanker, RankedArticle, RankingWeights
from repro.core.supplychain import (
    SupplyChainContract,
    TraceResult,
    build_supply_chain_graph,
    find_original_author,
    trace_to_factual_root,
)
from repro.errors import IdentityError, PlatformError
from repro.ml.ensemble import FakeNewsScorer
from repro.social.cascade import ShareEvent

__all__ = ["TrustingNewsPlatform", "PublishedArticle"]

_FACT_PREFIX = "fact:"


@dataclass(frozen=True)
class PublishedArticle:
    """What the publish pipeline returns for one article."""

    article_id: str
    author_address: str
    room: str
    parents: tuple[str, ...]
    fact_roots: tuple[str, ...]
    modification_degree: float
    ai_score: float | None
    receipt: TxReceipt


class TrustingNewsPlatform:
    """The AI blockchain platform for trusting news, end to end."""

    def __init__(
        self,
        seed: int = 0,
        chain: "LocalChain | Any" = None,
        provenance_method: str = "minhash",
        ranking_weights: RankingWeights | None = None,
        scorer: FakeNewsScorer | None = None,
    ):
        # Any LocalChain-compatible backend works; pass a
        # repro.chain.NetworkedChain to run over real consensus.
        self.chain = chain or LocalChain(seed=seed)
        self.rng = random.Random(seed + 1000)
        for contract in (
            IdentityContract(),
            FactualDatabaseContract(),
            NewsRoomContract(),
            SupplyChainContract(),
            VoteContract(),
            TokenContract(),
            PlatformGovernanceContract(),
            MediaRegistryContract(),
            ToolMarketContract(),
            ConductContract(),
        ):
            self.chain.install_contract(contract)
        self.index = ProvenanceIndex(method=provenance_method)
        self.media_verifier = MediaVerifier()
        self.ranker = FactualnessRanker(ranking_weights)
        self.scorer = scorer
        self.accounts: dict[str, KeyPair] = {}
        self._platform_owner: dict[str, str] = {}  # platform name -> owner account name
        self._ai_scores: dict[str, float] = {}
        self._graph_cache: nx.DiGraph | None = None
        self._graph_height = -1
        # Governance bootstrap: the platform operator's own account.
        self.governance = self._new_account("governance")
        self.chain.invoke(
            self.governance, "identity", "register",
            {"display_name": "governance", "role": "checker"},
        )
        self.chain.invoke(
            self.governance, "identity", "verify", {"address": self.governance.address}
        )

    # -- accounts ----------------------------------------------------------

    def _new_account(self, name: str) -> KeyPair:
        if name in self.accounts:
            raise IdentityError(f"account name {name!r} already exists")
        keypair = self.chain.new_account()
        self.accounts[name] = keypair
        return keypair

    def account(self, name: str) -> KeyPair:
        keypair = self.accounts.get(name)
        if keypair is None:
            raise IdentityError(f"no account named {name!r}")
        return keypair

    def address_of(self, name: str) -> str:
        return self.account(name).address

    def register_participant(self, name: str, role: str, verified: bool = True) -> str:
        """Create + register an identity; optionally verify via governance.

        Returns the new ledger address.
        """
        keypair = self._new_account(name)
        self.chain.invoke(
            keypair, "identity", "register", {"display_name": name, "role": role}
        )
        if verified:
            self.chain.invoke(
                self.governance, "identity", "verify", {"address": keypair.address}
            )
        return keypair.address

    # -- factual database -------------------------------------------------------

    def seed_fact(self, fact_id: str, text: str, source: str, topic: str) -> TxReceipt:
        """Bootstrap a ground-truth fact (official public record)."""
        receipt = self.chain.invoke(
            self.governance,
            "factualdb",
            "seed_fact",
            {
                "fact_id": fact_id,
                "content_hash": sha256_hex(text.encode("utf-8")),
                "source": source,
                "topic": topic,
            },
        )
        self.index.add(_FACT_PREFIX + fact_id, text)
        return receipt

    def facts(self, topic: str | None = None) -> list[str]:
        return self.chain.query("factualdb", "list_facts", {"topic": topic})

    # -- platforms & rooms ---------------------------------------------------------

    def create_distribution_platform(self, owner_name: str, platform_name: str) -> TxReceipt:
        receipt = self.chain.invoke(
            self.account(owner_name), "newsroom", "create_platform",
            {"platform_name": platform_name},
        )
        self._platform_owner[platform_name] = owner_name
        return receipt

    def create_news_room(
        self, owner_name: str, platform_name: str, room_name: str, topic: str
    ) -> TxReceipt:
        return self.chain.invoke(
            self.account(owner_name), "newsroom", "create_room",
            {"platform_name": platform_name, "room_name": room_name, "topic": topic},
        )

    def authenticate_journalist(self, platform_name: str, journalist_name: str) -> TxReceipt:
        owner = self._platform_owner.get(platform_name)
        if owner is None:
            raise PlatformError(f"unknown platform {platform_name!r}")
        return self.chain.invoke(
            self.account(owner), "newsroom", "authenticate_journalist",
            {"platform_name": platform_name, "address": self.address_of(journalist_name)},
        )

    # -- AI ---------------------------------------------------------------------------

    def train_ai(self, texts: list[str], labels: Sequence[int]) -> None:
        """Fit the platform's text scorer on a labeled corpus."""
        self.scorer = self.scorer or FakeNewsScorer()
        self.scorer.fit(texts, labels)

    def ai_score(self, text: str) -> float | None:
        """P(fake) for a text, or None if no scorer is trained yet."""
        if self.scorer is None:
            return None
        return self.scorer.score_one(text)

    # -- media provenance --------------------------------------------------------

    def register_media(self, owner_name: str, media_id: str, signal, description: str = "") -> TxReceipt:
        """Commit a captured media asset's fingerprint on-chain."""
        fingerprint = MediaVerifier.fingerprint_record(signal)
        return self.chain.invoke(
            self.account(owner_name), "media", "register",
            {"media_id": media_id, "fingerprint": fingerprint, "description": description},
        )

    def assess_media(self, media_id: str, suspect_signal, article_id: str | None = None) -> float:
        """Tamper-score a suspect signal against its registration.

        With *article_id* set, the assessment is also recorded on-chain
        (governance-signed) so the ranking verdict is auditable.
        """
        registered = self.chain.query("media", "get_media", {"media_id": media_id})
        assessment = self.media_verifier.assess(registered, suspect_signal, media_id)
        if article_id is not None and assessment.registered:
            self.chain.invoke(
                self.governance, "media", "record_assessment",
                {"media_id": media_id, "article_id": article_id,
                 "tamper_score": assessment.tamper_score},
            )
        return assessment.tamper_score

    # -- platform governance (crowd-reviewed charters) ------------------------------

    def petition_platform(self, owner_name: str, platform_name: str,
                          charter: str, quorum: int = 3) -> TxReceipt:
        return self.chain.invoke(
            self.account(owner_name), "governance", "petition",
            {"platform_name": platform_name, "charter": charter, "quorum": quorum},
        )

    def review_petition(self, checker_name: str, platform_name: str, approve: bool) -> TxReceipt:
        return self.chain.invoke(
            self.account(checker_name), "governance", "review",
            {"platform_name": platform_name, "approve": approve},
        )

    def finalize_petition(self, platform_name: str) -> str:
        receipt = self.chain.invoke(
            self.governance, "governance", "finalize", {"platform_name": platform_name}
        )
        return receipt.return_value["status"]

    def is_chartered(self, platform_name: str) -> bool:
        return self.chain.query("governance", "is_chartered", {"platform_name": platform_name})

    # -- publishing pipeline --------------------------------------------------------------

    def publish_article(
        self,
        author_name: str,
        platform_name: str,
        room_name: str,
        article_id: str,
        text: str,
        topic: str,
        media: list[tuple[str, Any]] | None = None,
    ) -> PublishedArticle:
        """Full editorial pipeline: draft -> review -> publish -> record.

        Provenance discovery and AI scoring happen as part of the
        pipeline; the supply-chain node (with discovered parents, fact
        roots, and measured modification degree) is committed on-chain.
        """
        author = self.account(author_name)
        owner = self._platform_owner.get(platform_name)
        if owner is None:
            raise PlatformError(f"unknown platform {platform_name!r}")
        content_hash = sha256_hex(text.encode("utf-8"))
        candidates = self.index.discover_parents(text, exclude=article_id)
        parents = tuple(
            c.article_id for c in candidates if not c.article_id.startswith(_FACT_PREFIX)
        )
        fact_roots = tuple(
            c.article_id[len(_FACT_PREFIX):]
            for c in candidates
            if c.article_id.startswith(_FACT_PREFIX)
        )
        parent_degrees = [self.index.degree_between(text, p) for p in parents]
        fact_degrees = [self.index.degree_between(text, _FACT_PREFIX + f) for f in fact_roots]
        all_degrees = parent_degrees + fact_degrees
        degree = min(all_degrees) if all_degrees else 1.0
        # Editorial workflow on-chain.
        self.chain.invoke(
            author, "newsroom", "submit_draft",
            {
                "article_id": article_id,
                "platform_name": platform_name,
                "room_name": room_name,
                "content_hash": content_hash,
            },
        )
        self.chain.invoke(author, "newsroom", "start_review", {"article_id": article_id})
        self.chain.invoke(
            self.account(owner), "newsroom", "publish", {"article_id": article_id}
        )
        receipt = self.chain.invoke(
            author, "supplychain", "record_node",
            {
                "article_id": article_id,
                "content_hash": content_hash,
                "parents": list(parents),
                "parent_degrees": parent_degrees,
                "modification_degree": degree,
                "topic": topic,
                "op": "publish",
                "fact_roots": list(fact_roots),
                "fact_degrees": fact_degrees,
            },
        )
        self.index.add(article_id, text)
        ai = self.ai_score(text)
        # Media fusion (Fig. 1 component 2): any attached asset that fails
        # fingerprint verification drags P(fake) up — a deepfaked clip
        # condemns the article even when its text reads neutrally.
        if media:
            tamper_scores = [
                self.assess_media(media_id, signal, article_id=article_id)
                for media_id, signal in media
            ]
            worst = max(tamper_scores)
            ai = worst if ai is None else max(ai, worst)
        if ai is not None:
            self._ai_scores[article_id] = ai
        return PublishedArticle(
            article_id=article_id,
            author_address=author.address,
            room=room_name,
            parents=parents,
            fact_roots=fact_roots,
            modification_degree=degree,
            ai_score=ai,
            receipt=receipt,
        )

    def report_external(
        self,
        reporter_name: str,
        article_id: str,
        text: str,
        topic: str,
        source: str,
    ) -> PublishedArticle:
        """Refer news published in *other* media into the platform (§VI).

        "The system will also provide mechanisms for person to refer
        and/or report news published in other media sources into the
        news rooms for the discussion."  External referrals skip the
        editorial workflow (they are not this platform's publications)
        but go through full provenance discovery and land on the supply
        chain with ``op="external-report"`` and the claimed source
        recorded, so they can be ranked and discussed like anything
        else.
        """
        reporter = self.account(reporter_name)
        content_hash = sha256_hex(f"{source}:{text}".encode("utf-8"))
        candidates = self.index.discover_parents(text, exclude=article_id)
        parents = tuple(
            c.article_id for c in candidates if not c.article_id.startswith(_FACT_PREFIX)
        )
        fact_roots = tuple(
            c.article_id[len(_FACT_PREFIX):]
            for c in candidates
            if c.article_id.startswith(_FACT_PREFIX)
        )
        parent_degrees = [self.index.degree_between(text, p) for p in parents]
        fact_degrees = [self.index.degree_between(text, _FACT_PREFIX + f) for f in fact_roots]
        all_degrees = parent_degrees + fact_degrees
        degree = min(all_degrees) if all_degrees else 1.0
        receipt = self.chain.invoke(
            reporter, "supplychain", "record_node",
            {
                "article_id": article_id,
                "content_hash": content_hash,
                "parents": list(parents),
                "parent_degrees": parent_degrees,
                "modification_degree": degree,
                "topic": topic,
                "op": "external-report",
                "fact_roots": list(fact_roots),
                "fact_degrees": fact_degrees,
            },
        )
        self.index.add(article_id, text)
        ai = self.ai_score(text)
        if ai is not None:
            self._ai_scores[article_id] = ai
        return PublishedArticle(
            article_id=article_id,
            author_address=reporter.address,
            room="(external)",
            parents=parents,
            fact_roots=fact_roots,
            modification_degree=degree,
            ai_score=ai,
            receipt=receipt,
        )

    def ingest_share(self, event: ShareEvent, article: Article, topic: str | None = None) -> None:
        """Record a social-media share as a supply-chain transaction.

        The sharer's account is auto-registered (unverified) on first
        sight — the platform admits the public, but every share is
        signed and attributable from then on.
        """
        name = event.agent_id
        if name not in self.accounts:
            keypair = self._new_account(name)
            self.chain.invoke(
                keypair, "identity", "register", {"display_name": name, "role": "consumer"}
            )
        sharer = self.account(name)
        parents = [event.parent_article_id] if event.parent_article_id in self.index else []
        degrees = [self.index.degree_between(article.text, p) for p in parents]
        self.chain.invoke(
            sharer, "supplychain", "record_node",
            {
                "article_id": article.article_id,
                "content_hash": sha256_hex(article.text.encode("utf-8")),
                "parents": parents,
                "parent_degrees": degrees,
                "modification_degree": min(degrees) if degrees else 1.0,
                "topic": topic or article.topic,
                "op": event.op,
                "fact_roots": [],
                "fact_degrees": [],
            },
        )
        self.index.add(article.article_id, article.text)
        ai = self.ai_score(article.text)
        if ai is not None:
            self._ai_scores[article.article_id] = ai

    # -- crowd votes -----------------------------------------------------------------------

    def cast_vote(self, voter_name: str, article_id: str, verdict: bool, weight: float = 1.0) -> TxReceipt:
        return self.chain.invoke(
            self.account(voter_name), "votes", "cast",
            {"article_id": article_id, "verdict": verdict, "weight": weight},
        )

    def crowd_score(self, article_id: str) -> float | None:
        tally = self.chain.query("votes", "tally", {"article_id": article_id})
        return tally["factual_share"] if tally["votes"] > 0 else None

    # -- supply-chain analytics ---------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """The supply-chain graph, rebuilt from the ledger when stale."""
        if self._graph_cache is None or self.chain.ledger.height != self._graph_height:
            self._graph_cache = build_supply_chain_graph(self.chain.ledger)
            self._graph_height = self.chain.ledger.height
        return self._graph_cache

    def trace(self, article_id: str) -> TraceResult:
        return trace_to_factual_root(self.graph, article_id)

    def accountable_author(self, article_id: str) -> str | None:
        """The address answerable for this article's content (§IV)."""
        return find_original_author(self.graph, article_id)

    def expert_panel(self, topic: str, k: int = 5) -> list[str]:
        return ExpertFinder(self.graph).suggest_panel(topic, k=k)

    # -- ranking -----------------------------------------------------------------------------------

    def article_signals(self, article_id: str, crowd_score: float | None = None) -> ArticleSignals:
        trace = self.trace(article_id)
        return ArticleSignals(
            article_id=article_id,
            provenance_score=trace.provenance_score,
            ai_score=(1.0 - self._ai_scores[article_id]) if article_id in self._ai_scores else None,
            crowd_score=crowd_score if crowd_score is not None else self.crowd_score(article_id),
        )

    def rank_article(
        self,
        article_id: str,
        crowd_score: float | None = None,
        mode: str = "hybrid",
        record: bool = True,
    ) -> RankedArticle:
        """Compute (and by default, commit) the article's ranking verdict."""
        signals = self.article_signals(article_id, crowd_score)
        score = self.ranker.score(signals, mode=mode)
        if record:
            self.chain.invoke(
                self.governance, "supplychain", "record_ranking",
                {
                    "article_id": article_id,
                    "provenance_score": signals.provenance_score,
                    "ai_score": signals.ai_score,
                    "crowd_score": signals.crowd_score,
                    "final_score": score,
                },
            )
        return RankedArticle(
            article_id=article_id,
            score=score,
            provenance_score=signals.provenance_score,
            ai_score=signals.ai_score,
            crowd_score=signals.crowd_score,
        )

    def rank_room(self, platform_name: str, room_name: str, mode: str = "hybrid") -> list[RankedArticle]:
        """The reader view: every article in a room, most trustworthy first.

        §V: "All articles in the newsroom will be evaluated and ranked by
        crowd sourcing trust check mechanisms within the AI blockchain
        platform."  Articles are found from ledger events, so the view is
        an audit-grade reconstruction, not a cached feed.
        """
        article_ids = [
            event["article_id"]
            for event in self.chain.ledger.events(contract="newsroom", kind="article-published")
            if event["room"] == room_name
        ]
        signals = [self.article_signals(article_id) for article_id in article_ids]
        return self.ranker.rank(signals, mode=mode)

    def promote_to_factual(self, article_id: str, fact_id: str | None = None) -> TxReceipt:
        """Promote a highly ranked article into the factual database.

        The promotion threshold is enforced on-chain; this helper reads
        the recorded ranking, so an article must have been ranked first.
        """
        ranking = self.chain.query("supplychain", "get_ranking", {"article_id": article_id})
        if ranking is None:
            raise PlatformError(f"article {article_id} has no recorded ranking")
        if ranking["final_score"] < PROMOTION_THRESHOLD:
            raise PlatformError(
                f"score {ranking['final_score']:.3f} below promotion threshold {PROMOTION_THRESHOLD}"
            )
        node = self.chain.query("supplychain", "get_node", {"article_id": article_id})
        fact_id = fact_id or f"promoted-{article_id}"
        receipt = self.chain.invoke(
            self.governance, "factualdb", "promote",
            {
                "fact_id": fact_id,
                "content_hash": node["content_hash"],
                "topic": node["topic"],
                "article_id": article_id,
                "score": ranking["final_score"],
            },
        )
        if article_id in self.index:
            self.index.add(_FACT_PREFIX + fact_id, self.index.text_of(article_id))
        return receipt

    # -- topic routing ----------------------------------------------------------------------------------

    def train_topic_model(self, texts: list[str], topics: Sequence[str]) -> None:
        """Fit the room-routing topic classifier."""
        from repro.ml.topic_model import TopicClassifier

        self.topic_model = TopicClassifier().fit(texts, topics)

    def suggest_topic(self, text: str) -> tuple[str, float]:
        """(topic, confidence) for routing content to a news room."""
        model = getattr(self, "topic_model", None)
        if model is None:
            raise PlatformError("train_topic_model must be called first")
        return model.confidence(text)

    # -- cryptographic proofs ------------------------------------------------------------------------

    def prove_article(self, article_id: str) -> dict[str, Any]:
        """Merkle inclusion proof that an article's recording transaction
        is committed — checkable by anyone holding only block headers.

        Returns the block height/hash, the transaction id, the proof
        object, and its verification result against the block's root.
        """
        ledger = self.chain.ledger
        recording_tx = None
        committed = None
        for candidate in ledger.transactions_by_contract("supplychain"):
            tx = candidate.transaction
            if tx.method == "record_node" and tx.args.get("article_id") == article_id:
                recording_tx = tx
                committed = candidate
                break
        if recording_tx is None or committed is None:
            raise PlatformError(f"no supply-chain record for {article_id}")
        block = ledger.block(committed.block_height)
        proof = block.prove_inclusion(recording_tx.tx_id)
        return {
            "article_id": article_id,
            "tx_id": recording_tx.tx_id,
            "block_height": block.height,
            "block_hash": block.block_hash,
            "merkle_root": block.merkle_root,
            "proof": proof,
            "verified": proof.verify(block.merkle_root),
        }

    # -- audit ----------------------------------------------------------------------------------------

    def export_audit(self, article_id: str) -> dict[str, Any]:
        """Everything the ledger says about one article, in one bundle.

        The transparency artifact a reader (or regulator) gets: the
        supply-chain record, trace to the factual root, recorded ranking
        with component signals, every vote, every comment, and the
        accountable author.  All fields are reconstructions from
        committed state — nothing here is platform say-so.
        """
        node = self.chain.query("supplychain", "get_node", {"article_id": article_id})
        if node is None:
            raise PlatformError(f"article {article_id} is not on the ledger")
        trace = self.trace(article_id)
        votes = [
            {"voter": event["_sender"], "verdict": event["verdict"], "weight": event["weight"]}
            for event in self.chain.ledger.events(contract="votes", kind="vote-cast")
            if event["article_id"] == article_id
        ]
        comments = self.chain.query("newsroom", "list_comments", {"article_id": article_id})
        return {
            "article_id": article_id,
            "node": node,
            "trace": {
                "traceable": trace.traceable,
                "root": trace.root,
                "path": trace.path,
                "hops": trace.hops,
                "cumulative_modification": trace.cumulative_modification,
                "provenance_score": trace.provenance_score,
            },
            "ranking": self.chain.query("supplychain", "get_ranking", {"article_id": article_id}),
            "votes": votes,
            "comments": comments,
            "accountable_author": self.accountable_author(article_id),
        }

    # -- stats ---------------------------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Headline platform counters, reconstructed from the ledger."""
        ledger = self.chain.ledger
        graph = self.graph
        return {
            "blocks": ledger.height,
            "transactions": ledger.total_transactions(),
            "accounts": len(self.accounts),
            "articles": sum(1 for _, a in graph.nodes(data=True) if not a.get("is_fact_root")),
            "facts": len(self.facts()),
            "supply_chain_edges": graph.number_of_edges(),
        }
