"""The append-only ledger: the chain of blocks plus query indexes.

Beyond storage, the ledger is the platform's *audit substrate*: the
supply-chain graph (§VI), expert mining, and accountability experiments
all reconstruct history by scanning committed transactions and events,
so the ledger keeps secondary indexes by transaction id, sender, and
contract.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.chain.block import Block, make_genesis_block
from repro.chain.transaction import Transaction
from repro.errors import InvalidBlockError

__all__ = ["Ledger", "CommittedTx"]

#: Archived blocks decoded on demand are cached up to this many entries
#: (LRU) so repeated explorer/audit reads don't re-decode every time.
_ARCHIVE_CACHE_SIZE = 128


@dataclass(frozen=True)
class CommittedTx:
    """A transaction in its final resting place, with commit verdict."""

    transaction: Transaction
    block_height: int
    tx_index: int
    valid: bool  # False => failed MVCC validation, recorded but not applied


class Ledger:
    """One peer's copy of the chain.

    A ledger normally holds every block in memory (``_base == 0``).  A
    ledger rebuilt by the durable store's snapshot recovery holds only
    the blocks *above* the snapshot; heights below come from an
    ``archive`` callable (decoding the block log on demand) behind a
    bounded LRU cache — see :meth:`from_recovery`.
    """

    def __init__(self, genesis: Block | None = None):
        self._blocks: list[Block] = [genesis or make_genesis_block()]
        #: Height of ``self._blocks[0]``; anything below is archived.
        self._base = 0
        self._archive: Callable[[int], Block] | None = None
        self._archive_cache: OrderedDict[int, Block] = OrderedDict()
        self._tx_locator: dict[str, tuple[int, int]] = {}
        self._validity: dict[str, bool] = {}
        self._by_sender: dict[str, list[str]] = defaultdict(list)
        self._by_contract: dict[str, list[str]] = defaultdict(list)

    @classmethod
    def from_recovery(
        cls,
        window: list[Block],
        base: int,
        indexes: dict[str, Any],
        archive: Callable[[int], Block] | None = None,
    ) -> "Ledger":
        """Rebuild a ledger from a recovery snapshot.

        *window* is the in-memory block window starting at height *base*
        (the snapshot anchor); *indexes* is a :meth:`index_dump` mapping
        covering heights ``<= base``; *archive* serves heights below
        *base* on demand.
        """
        ledger = cls.__new__(cls)
        ledger._blocks = list(window)
        ledger._base = base
        ledger._archive = archive
        ledger._archive_cache = OrderedDict()
        ledger._tx_locator = {
            tx_id: (loc[0], loc[1]) for tx_id, loc in indexes.get("tx_locator", {}).items()
        }
        ledger._validity = {k: bool(v) for k, v in indexes.get("validity", {}).items()}
        ledger._by_sender = defaultdict(list)
        for sender, tx_ids in indexes.get("by_sender", {}).items():
            ledger._by_sender[sender] = list(tx_ids)
        ledger._by_contract = defaultdict(list)
        for contract, tx_ids in indexes.get("by_contract", {}).items():
            ledger._by_contract[contract] = list(tx_ids)
        return ledger

    # -- growth ------------------------------------------------------------

    def append(self, block: Block, validity: list[bool]) -> None:
        """Append a block whose per-tx validity verdicts are *validity*.

        Atomic: every check — and every read of the block's transactions
        — happens before the first mutation, so an exception (bad
        linkage, a hostile transaction object raising mid-indexing)
        leaves the ledger exactly as it was.  The seed version appended
        the block *before* building the indexes; a failure there left a
        committed block invisible to ``tx_locator``/``by_sender`` lookups.
        """
        head = self.head
        if block.height != head.height + 1:
            raise InvalidBlockError(
                f"block height {block.height} does not extend head {head.height}"
            )
        if block.prev_hash != head.block_hash:
            raise InvalidBlockError(f"block {block.height} prev_hash mismatch")
        block.verify_structure()
        if len(validity) != len(block.transactions):
            raise InvalidBlockError("validity vector length mismatch")
        entries = [
            (tx.tx_id, index, tx.sender, tx.contract)
            for index, tx in enumerate(block.transactions)
        ]
        self._blocks.append(block)
        for tx_id, index, sender, contract in entries:
            self._tx_locator[tx_id] = (block.height, index)
            self._validity[tx_id] = validity[index]
            self._by_sender[sender].append(tx_id)
            self._by_contract[contract].append(tx_id)

    # -- access ------------------------------------------------------------

    @property
    def head(self) -> Block:
        return self._blocks[-1]

    @property
    def height(self) -> int:
        return self.head.height

    def block(self, height: int) -> Block:
        if height < 0 or height >= self._base:
            return self._blocks[height - self._base if height >= 0 else height]
        cached = self._archive_cache.get(height)
        if cached is not None:
            self._archive_cache.move_to_end(height)
            return cached
        if self._archive is None:
            raise InvalidBlockError(f"height {height} is below the recovered window")
        block = self._archive(height)
        self._archive_cache[height] = block
        if len(self._archive_cache) > _ARCHIVE_CACHE_SIZE:
            self._archive_cache.popitem(last=False)
        return block

    def blocks(self) -> Iterator[Block]:
        for height in range(self.height + 1):
            yield self.block(height)

    def __len__(self) -> int:
        """Number of blocks, including genesis."""
        return self.height + 1

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._tx_locator

    def get_transaction(self, tx_id: str) -> CommittedTx | None:
        locator = self._tx_locator.get(tx_id)
        if locator is None:
            return None
        height, index = locator
        return CommittedTx(
            transaction=self.block(height).transactions[index],
            block_height=height,
            tx_index=index,
            valid=self._validity[tx_id],
        )

    def transactions(self, valid_only: bool = True) -> Iterator[CommittedTx]:
        """All committed transactions, in chain order."""
        for block in self.blocks():
            for index, tx in enumerate(block.transactions):
                valid = self._validity[tx.tx_id]
                if valid or not valid_only:
                    yield CommittedTx(tx, block.height, index, valid)

    def transactions_newest_first(self, valid_only: bool = False) -> Iterator[CommittedTx]:
        """Committed transactions in reverse chain order (height desc,
        index-in-block desc), lazily block by block.

        This is the explorer's walk: a consumer that stops after *k*
        results touches at most the blocks holding those results, instead
        of materializing the whole chain the way
        ``reversed(list(self.transactions(...)))`` would.
        """
        for height in range(self.height, 0, -1):
            block = self.block(height)
            for index in range(len(block.transactions) - 1, -1, -1):
                tx = block.transactions[index]
                valid = self._validity[tx.tx_id]
                if valid or not valid_only:
                    yield CommittedTx(tx, height, index, valid)

    def block_validity(self, height: int) -> list[bool]:
        """The per-transaction validity vector for the block at *height*
        (the same vector :meth:`append` recorded for it)."""
        return [self._validity[tx.tx_id] for tx in self.block(height).transactions]

    def transactions_by_sender(self, sender: str) -> list[CommittedTx]:
        found = [self.get_transaction(tx_id) for tx_id in self._by_sender.get(sender, [])]
        return [c for c in found if c is not None]

    def transactions_by_contract(self, contract: str) -> list[CommittedTx]:
        found = [self.get_transaction(tx_id) for tx_id in self._by_contract.get(contract, [])]
        return [c for c in found if c is not None]

    def events(self, contract: str | None = None, kind: str | None = None) -> Iterator[dict[str, Any]]:
        """All events emitted by valid transactions, optionally filtered.

        Each yielded event dict is augmented with ``_tx_id``, ``_sender``
        and ``_height`` so consumers can attribute it.
        """
        for committed in self.transactions(valid_only=True):
            tx = committed.transaction
            if contract is not None and tx.contract != contract:
                continue
            for event in tx.events:
                if kind is not None and event.get("kind") != kind:
                    continue
                enriched = dict(event)
                enriched["_tx_id"] = tx.tx_id
                enriched["_sender"] = tx.sender
                enriched["_height"] = committed.block_height
                yield enriched

    def total_transactions(self) -> int:
        return len(self._tx_locator)

    def verify_chain(self) -> bool:
        """Full-chain audit: hashes link and every block is internally
        consistent.  Returns True on success, raises on tampering."""
        prev = self.block(0)
        for height in range(1, self.height + 1):
            current = self.block(height)
            current.verify_structure()
            if current.prev_hash != prev.block_hash:
                raise InvalidBlockError(f"chain broken at height {current.height}")
            prev = current
        return True

    def index_dump(self) -> dict[str, Any]:
        """JSON-ready copy of the secondary indexes, for snapshots."""
        return {
            "tx_locator": {k: list(v) for k, v in self._tx_locator.items()},
            "validity": dict(self._validity),
            "by_sender": {k: list(v) for k, v in self._by_sender.items()},
            "by_contract": {k: list(v) for k, v in self._by_contract.items()},
        }

    def replay_state(self):
        """Rebuild the world state by replaying valid write sets in order.

        This is how a light node bootstraps (or how an auditor checks a
        peer): the committed chain fully determines the state, so the
        replayed :class:`~repro.chain.state.WorldState` must produce the
        same ``state_digest()`` as any honest peer at this height.
        """
        from repro.chain.state import WorldState

        state = WorldState()
        for committed in self.transactions(valid_only=True):
            state.apply_write_set(committed.transaction.write_set)
        return state
