"""Pending-transaction pool feeding the ordering service.

FIFO with dedup by transaction id.  The pool also enforces a capacity so
scalability experiments can observe back-pressure instead of unbounded
memory growth.

Transactions removed by :meth:`Mempool.take` stay *reserved* until they
either commit (``remove``) or are explicitly returned (``requeue`` /
``release``).  Without the reservation, a gossip echo of a transaction
already taken into an in-flight proposal re-enters the pool and — under
pipelined consensus, where several proposals are open at once — gets
taken again into a second block at a different height: a double-commit
hazard that cannot occur with one block in flight but is routine at
pipeline depth > 1.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro.chain.transaction import Transaction
from repro.errors import ChainError

__all__ = ["Mempool"]


class Mempool:
    """Ordered set of transactions awaiting inclusion in a block."""

    def __init__(self, capacity: int = 100_000):
        self._pending: OrderedDict[str, Transaction] = OrderedDict()
        #: Tx ids handed out by ``take`` whose fate (commit / requeue) is
        #: still open; membership and admission treat them as present.
        self._reserved: set[str] = set()
        self.capacity = capacity
        self.rejected_full = 0
        self.rejected_duplicate = 0

    def add(self, tx: Transaction) -> bool:
        """Admit a transaction; False if duplicate or pool is full.

        A transaction currently reserved by an in-flight proposal is a
        duplicate — re-admitting it would let it be proposed twice.
        """
        if tx.tx_id in self._pending or tx.tx_id in self._reserved:
            self.rejected_duplicate += 1
            return False
        if len(self._pending) >= self.capacity:
            self.rejected_full += 1
            return False
        self._pending[tx.tx_id] = tx
        return True

    def take(self, max_count: int) -> list[Transaction]:
        """Remove and return up to *max_count* transactions, FIFO.

        Taken transactions stay reserved until ``remove`` (committed) or
        ``requeue``/``release`` (proposal died) settles them.
        """
        if max_count <= 0:
            raise ChainError("max_count must be positive")
        batch: list[Transaction] = []
        while self._pending and len(batch) < max_count:
            tx_id, tx = self._pending.popitem(last=False)
            self._reserved.add(tx_id)
            batch.append(tx)
        return batch

    def requeue(self, txs: Iterable[Transaction]) -> None:
        """Return previously taken transactions to the FRONT of the pool.

        Used when a proposal dies (view change, superseded height): the
        transactions were admitted once and must not be silently dropped,
        so capacity is NOT enforced here — durability outranks the
        back-pressure bound.  Front placement preserves rough FIFO order
        (they were the oldest pending work).
        """
        for tx in reversed(list(txs)):
            self._reserved.discard(tx.tx_id)
            if tx.tx_id in self._pending:
                continue
            self._pending[tx.tx_id] = tx
            self._pending.move_to_end(tx.tx_id, last=False)

    def release(self, tx_ids: Iterable[str]) -> None:
        """Drop reservations without re-admitting (e.g. txs that turned
        out to be committed elsewhere)."""
        for tx_id in tx_ids:
            self._reserved.discard(tx_id)

    def snapshot(self) -> list[Transaction]:
        """The pending transactions, in FIFO order, without removing them."""
        return list(self._pending.values())

    def remove(self, tx_ids: Iterable[str]) -> None:
        """Drop transactions that were committed via someone else's block.

        Accepts any iterable (consensus callers pass generators), and
        consumes it exactly once.  Also settles any open reservation for
        the id — committed is a final state.
        """
        for tx_id in tx_ids:
            self._pending.pop(tx_id, None)
            self._reserved.discard(tx_id)

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx_id: str) -> bool:
        """True for pending *or* reserved ids: both mean "this pool has
        already accepted this transaction" for admission purposes."""
        return tx_id in self._pending or tx_id in self._reserved
