"""Blockchain network harness and client API.

:class:`BlockchainNetwork` wires N peers onto a simulated network with a
chosen consensus engine; :class:`ChainClient` is the application-facing
handle that signs, endorses, and submits transactions and waits for
receipts by advancing simulated time.

Endorsement is modelled as a synchronous RPC to endorsing peers (the
client calls ``peer.endorse`` directly).  This matches Fabric, where
proposal simulation happens on a request/response channel outside
consensus; the ordering and commit path — the part whose latency the
paper's scalability question is about — runs fully through the
simulated network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Literal

from repro.chain.consensus import PBFTEngine, RoundRobinOrderer, ShardedExecutor
from repro.chain.contracts import Contract, ContractRegistry, EndorsementPolicy  # noqa: F401 - re-exported
from repro.chain.peer import Admission, Peer
from repro.chain.store import BlockStore, DurableStore, MemoryStore, SQLiteStore
from repro.chain.transaction import Transaction, TxReceipt
from repro.crypto.keys import KeyPair
from repro.errors import ChainError, ContractError, EndorsementError
from repro.obs import MetricsRegistry, Tracer
from repro.simnet import LatencyModel, Network, SimDisk, Simulator

__all__ = ["BlockchainNetwork", "ChainClient"]

ConsensusKind = Literal["poa", "pbft"]
StorageKind = Literal["memory", "durable", "sqlite"]


@dataclass
class ChainClient:
    """A signing identity bound to a :class:`BlockchainNetwork`."""

    keypair: KeyPair
    network: "BlockchainNetwork"
    _nonce: int = 0

    @property
    def address(self) -> str:
        return self.keypair.address

    def invoke(
        self,
        contract: str,
        method: str,
        args: dict[str, Any] | None = None,
        wait: bool = True,
    ) -> TxReceipt | str:
        """Endorse + submit an invocation.

        With ``wait=True`` (default) the simulator is advanced until the
        transaction commits and its receipt is returned; otherwise the
        tx id is returned immediately for batch submission.
        """
        tx = self.network.endorse_transaction(self, contract, method, args or {})
        self.network.submit(tx)
        if not wait:
            return tx.tx_id
        return self.network.wait_for_receipt(tx.tx_id)

    def query(self, contract: str, method: str, args: dict[str, Any] | None = None) -> Any:
        """Read-only invocation against one peer; nothing is ordered."""
        return self.network.query(self, contract, method, args or {})


class BlockchainNetwork:
    """N validating peers + consensus over a simulated network."""

    def __init__(
        self,
        n_peers: int = 4,
        consensus: ConsensusKind = "poa",
        latency: LatencyModel | None = None,
        block_interval: float = 0.5,
        max_block_txs: int = 500,
        seed: int = 0,
        n_shards: int | None = None,
        byzantine_peers: set[str] | None = None,
        view_timeout: float = 10.0,
        drop_probability: float = 0.0,
        pipeline_depth: int = 4,
        storage: StorageKind = "memory",
        snapshot_interval: int = 64,
    ):
        if consensus == "pbft" and n_peers < 4:
            raise ChainError("PBFT requires at least 4 peers")
        self.sim = Simulator()
        #: One shared metrics registry + tracer per network: every peer,
        #: sync manager, consensus engine, and auditor feeds it, so one
        #: export (see :mod:`repro.obs.export`) covers the whole run.
        self.obs = MetricsRegistry()
        self.tracer = Tracer(clock=lambda: self.sim.now, registry=self.obs)
        self.net = Network(
            self.sim, latency=latency, seed=seed,
            drop_probability=drop_probability, obs=self.obs,
        )
        self.rng = random.Random(seed + 1)
        self.seed = seed
        self.consensus = consensus
        self.peers: list[Peer] = []
        #: Attached :class:`repro.chain.audit.InvariantAuditor` instances;
        #: notified of admitted transactions and late-joined peers.
        self.auditors: list[Any] = []
        self._contract_factories: list[tuple[Callable[[], Contract], EndorsementPolicy | None]] = []
        self._policies: dict[str, EndorsementPolicy] = {}
        self.block_interval = block_interval
        self.max_block_txs = max_block_txs
        self.view_timeout = view_timeout
        #: PBFT in-flight sequence-number window (1 = unpipelined).
        self.pipeline_depth = pipeline_depth
        #: ``"memory"`` keeps the seed in-memory ledger; ``"durable"``
        #: gives every peer a fault-injectable SimDisk + DurableStore so
        #: restart is snapshot+tail recovery, not full replay; ``"sqlite"``
        #: swaps the snapshot files for serialized sqlite3 images with
        #: interned tx tables (same WAL, same recovery ladder).
        self.storage = storage
        self.snapshot_interval = snapshot_interval
        peer_ids = [f"peer-{i}" for i in range(n_peers)]
        self._validator_ids = list(peer_ids)
        byzantine_peers = byzantine_peers or set()
        for peer_id in peer_ids:
            registry = ContractRegistry()
            if consensus == "poa":
                engine: Any = RoundRobinOrderer(
                    peer_ids, block_interval=block_interval, max_block_txs=max_block_txs
                )
            else:
                engine = PBFTEngine(
                    peer_ids,
                    block_interval=block_interval,
                    view_timeout=view_timeout,
                    max_block_txs=max_block_txs,
                    pipeline_depth=pipeline_depth,
                )
            executor = ShardedExecutor(n_shards) if n_shards else None
            peer = Peer(
                node_id=peer_id,
                keypair=KeyPair.generate(self.rng),
                registry=registry,
                engine=engine,
                sharded_executor=executor,
                byzantine=peer_id in byzantine_peers,
                obs=self.obs,
                tracer=self.tracer,
                store=self._make_store(peer_id),
            )
            self.net.add_node(peer)
            self.peers.append(peer)
        #: validator id -> Ed25519 public key; engines that support
        #: signed votes (PBFT) get the directory so commit votes and
        #: sync-served certificates are cryptographically verifiable.
        self._validator_keys = {p.node_id: p.keypair.public_key for p in self.peers}
        for peer in self.peers:
            register = getattr(peer.engine, "register_validator_keys", None)
            if register is not None:
                register(self._validator_keys)
        for peer in self.peers:
            peer.engine.start()
            peer.sync.start()

    def _make_store(self, peer_id: str) -> BlockStore:
        """One storage backend per peer, per the network's ``storage``."""
        if self.storage in ("durable", "sqlite"):
            disk = SimDisk(
                node_id=peer_id,
                rng=random.Random(f"disk:{self.seed}:{peer_id}"),
            )
            cls = SQLiteStore if self.storage == "sqlite" else DurableStore
            return cls(
                disk=disk, node_id=peer_id, snapshot_interval=self.snapshot_interval
            )
        return MemoryStore()

    # -- deployment -------------------------------------------------------

    def install_contract(
        self,
        contract_factory: Callable[[], Contract],
        policy: EndorsementPolicy | None = None,
    ) -> str:
        """Install a contract (one instance per peer) network-wide."""
        self._contract_factories.append((contract_factory, policy))
        name = ""
        for peer in self.peers:
            contract = contract_factory()
            peer.registry.install(contract)
            name = contract.name
            if policy is not None:
                peer.set_policy(name, policy)
        if policy is not None:
            self._policies[name] = policy
        return name

    def join_peer(self, node_id: str | None = None) -> Peer:
        """Add a full node after the network is already running.

        The new peer is an *observer*: it validates and commits every
        block but is not in the validator set, so it never proposes (PoA)
        or votes toward quorums (PBFT counts only original validators).
        Bootstrap is snapshot-style state transfer — committed blocks are
        replayed synchronously from the freshest live peer — after which
        normal block dissemination keeps it current.
        """
        node_id = node_id or f"peer-{len(self.peers)}"
        registry = ContractRegistry()
        if self.consensus == "poa":
            engine: Any = RoundRobinOrderer(
                self._validator_ids, block_interval=self.block_interval,
                max_block_txs=self.max_block_txs,
            )
        else:
            engine = PBFTEngine(
                self._validator_ids, block_interval=self.block_interval,
                view_timeout=self.view_timeout, max_block_txs=self.max_block_txs,
                pipeline_depth=self.pipeline_depth,
            )
        peer = Peer(
            node_id=node_id,
            keypair=KeyPair.generate(self.rng),
            registry=registry,
            engine=engine,
            obs=self.obs,
            tracer=self.tracer,
            store=self._make_store(node_id),
        )
        for factory, policy in self._contract_factories:
            contract = factory()
            peer.registry.install(contract)
            if policy is not None:
                peer.set_policy(contract.name, policy)
        self.net.add_node(peer)
        self.peers.append(peer)
        register = getattr(peer.engine, "register_validator_keys", None)
        if register is not None:
            register(self._validator_keys)
        # State transfer: replay the committed chain from the freshest peer.
        live = [p for p in self.peers if not p.crashed and p is not peer]
        if live:
            source = max(live, key=lambda p: p.ledger.height)
            for height in range(1, source.ledger.height + 1):
                peer.commit_block(source.ledger.block(height))
            # Carry over the source's commit certificates (and their vote
            # signatures) so the new peer can serve — and later
            # re-verify — the bootstrapped range.
            source_certs = getattr(source.engine, "commit_certificates", None)
            if source_certs is not None and hasattr(peer.engine, "commit_certificates"):
                peer.engine.commit_certificates.update(source_certs)
            source_sigs = getattr(source.engine, "commit_signatures", None)
            if source_sigs is not None and hasattr(peer.engine, "commit_signatures"):
                peer.engine.commit_signatures.update(source_sigs)
        peer.engine.start()
        peer.sync.start()
        for auditor in self.auditors:
            auditor.watch_peer(peer)
        return peer

    def client(self, keypair: KeyPair | None = None) -> ChainClient:
        return ChainClient(keypair=keypair or KeyPair.generate(self.rng), network=self)

    # -- transaction path ----------------------------------------------------

    def endorse_transaction(
        self, client: ChainClient, contract: str, method: str, args: dict[str, Any]
    ) -> Transaction:
        """Build, sign, and gather endorsements for a proposal."""
        client._nonce += 1
        tx = Transaction.create(
            client.keypair,
            contract,
            method,
            args,
            nonce=client._nonce,
            timestamp=self.sim.now,
        )
        policy = self._policies.get(contract, EndorsementPolicy(required=1))
        endorsements = []
        reference = None
        failure: str | None = None
        # Endorsement is a synchronous RPC outside the simulated network,
        # so the span's sim-time duration is 0 by construction; the wall_ms
        # attribute is the meaningful cost, and phase.endorse records it
        # in seconds so the report can show an endorse row per lifecycle.
        span = self.tracer.start(
            "endorse", tx_id=tx.tx_id[:12], contract=contract, method=method
        )
        try:
            for peer in self.peers:
                outcome = peer.endorse(tx)
                if outcome is None:
                    continue
                endorsement, result = outcome
                if not result.success:
                    failure = result.error
                    continue
                if reference is None:
                    reference = result
                if endorsement.digest == rw_digest(reference):
                    endorsements.append(endorsement)
                if len(endorsements) >= policy.required:
                    break
        finally:
            self.tracer.finish(span, n_endorsements=len(endorsements))
            self.obs.histogram("phase.endorse").observe(
                span.attrs.get("wall_ms", 0.0) / 1000.0
            )
        if reference is None:
            raise ContractError(failure or f"no peer could endorse {contract}.{method}")
        if len(endorsements) < policy.required:
            raise EndorsementError(
                f"only {len(endorsements)} endorsements for {contract}.{method}, "
                f"policy requires {policy.required}"
            )
        return tx.with_execution(
            read_set=reference.read_set,
            write_set=reference.write_set,
            events=reference.events,
            return_value=reference.return_value,
            endorsements=tuple(endorsements),
        )

    def submit(self, tx: Transaction) -> Admission:
        """Hand an endorsed transaction to a random peer for gossip.

        Returns the effective :class:`~repro.chain.peer.Admission`.  A
        ``DUPLICATE``/``COMMITTED`` outcome is success — the transaction
        is already pending or final — and must *not* trigger the
        try-every-peer fallback (the seed code did, and could raise for
        a transaction that was happily in flight).  Only genuine
        rejections (``FULL``/``CRASHED``/``INVALID``) fall through to the
        other peers, and only if every peer rejects does this raise.
        """
        entry = self.rng.choice(self.peers)
        outcome = entry.submit(tx)
        if outcome.accepted:
            self._notify_admitted(tx)
            return outcome
        outcomes = {entry.node_id: outcome}
        for peer in self.peers:
            if peer is entry:
                continue
            outcome = peer.submit(tx)
            if outcome.accepted:
                self._notify_admitted(tx)
                return outcome
            outcomes[peer.node_id] = outcome
        detail = ", ".join(f"{node}: {out.value}" for node, out in outcomes.items())
        raise ChainError(f"no peer admitted tx {tx.tx_id[:12]} ({detail})")

    def _notify_admitted(self, tx: Transaction) -> None:
        for auditor in self.auditors:
            auditor.on_tx_admitted(tx)

    def query(self, client: ChainClient, contract: str, method: str, args: dict[str, Any]) -> Any:
        """Execute read-only against the freshest live peer, discard writes."""
        live = [p for p in self.peers if not p.crashed]
        for peer in sorted(live, key=lambda p: p.ledger.height, reverse=True):
            result = peer.registry.execute(
                peer.state, contract, method, args, caller=client.address,
                timestamp=self.sim.now, tx_id="query",
            )
            if not result.success:
                raise ContractError(result.error or "query failed")
            return result.return_value
        raise ChainError("no live peer to query")

    # -- progress ---------------------------------------------------------------

    def wait_for_receipt(self, tx_id: str, timeout: float = 120.0) -> TxReceipt:
        """Advance simulated time until *tx_id* commits on some peer."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            for peer in self.peers:
                receipt = peer.receipts.get(tx_id)
                if receipt is not None:
                    return receipt
            if not self.sim.step():
                break
        raise ChainError(f"tx {tx_id[:12]} did not commit within {timeout}s simulated")

    def run_for(self, duration: float) -> None:
        """Advance simulated time by *duration*."""
        self.sim.run(until=self.sim.now + duration)

    def stop(self) -> None:
        """Stop consensus engines and sync loops (lets the queue drain)."""
        for peer in self.peers:
            peer.engine.stop()
            peer.sync.stop()

    # -- inspection ---------------------------------------------------------------

    def assert_convergence(self) -> None:
        """Raise unless all live peers agree on chain prefix and state.

        Peers may be at different heights (messages in flight); the check
        is prefix-consistency of block hashes up to the minimum height.
        """
        live = [p for p in self.peers if not p.crashed]
        min_height = min(p.ledger.height for p in live)
        reference = live[0]
        for peer in live[1:]:
            for height in range(min_height + 1):
                a = reference.ledger.block(height).block_hash
                b = peer.ledger.block(height).block_hash
                if a != b:
                    raise ChainError(
                        f"fork at height {height}: {reference.node_id} vs {peer.node_id}"
                    )
        # Execution determinism: peers at the same height must hold the
        # bit-identical world state (the app-hash check).
        by_height: dict[int, list] = {}
        for peer in live:
            by_height.setdefault(peer.ledger.height, []).append(peer)
        for height, group in by_height.items():
            digests = {p.state.state_digest() for p in group}
            if len(digests) > 1:
                raise ChainError(
                    f"state divergence at height {height} among "
                    f"{[p.node_id for p in group]}"
                )

    def committed_heights(self) -> dict[str, int]:
        return {p.node_id: p.ledger.height for p in self.peers}


def rw_digest(result: Any) -> str:
    """Digest of an ExecutionResult's rw-set (endorsement comparison)."""
    from repro.chain.transaction import rwset_digest

    return rwset_digest(result.read_set, result.write_set)
