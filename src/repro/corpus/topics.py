"""Topic definitions for the synthetic news universe.

Each topic carries its own nouns, actor entities, locations, and object
phrases; the generator samples from these to make articles that are
topically coherent (so topic-based news rooms, expert identification,
and community detection have real signal to find).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Topic", "TOPICS", "topic_by_name"]


@dataclass(frozen=True)
class Topic:
    """A news beat: its vocabulary and cast of entities."""

    name: str
    nouns: tuple[str, ...]
    entities: tuple[str, ...]
    places: tuple[str, ...]
    objects: tuple[str, ...]


TOPICS: tuple[Topic, ...] = (
    Topic(
        name="politics",
        nouns=("bill", "committee", "amendment", "session", "coalition", "budget",
               "hearing", "resolution", "caucus", "ordinance", "statute", "veto"),
        entities=("senator ruiz", "governor hale", "minister okafor", "speaker lindqvist",
                  "representative chen", "chancellor moreau", "deputy iyer", "councilor banda"),
        places=("the capitol", "the assembly", "the lower house", "the federal court",
                "city hall", "the ministry"),
        objects=("the appropriations bill", "the ethics resolution", "the border statute",
                 "the voting rights amendment", "the infrastructure package", "the census plan"),
    ),
    Topic(
        name="economy",
        nouns=("inflation", "tariff", "surplus", "deficit", "index", "forecast",
               "quarter", "exports", "bond", "subsidy", "payroll", "audit"),
        entities=("the central bank", "treasury secretary vale", "economist duarte",
                  "the labor bureau", "analyst petrov", "the trade commission",
                  "chair whitfield", "the statistics office"),
        places=("the exchange", "the treasury", "the trade summit", "the quarterly briefing",
                "the bond market", "the regional forum"),
        objects=("the interest rate", "the jobs report", "the tariff schedule",
                 "the growth forecast", "the pension fund", "the currency reserve"),
    ),
    Topic(
        name="health",
        nouns=("trial", "vaccine", "clinic", "outbreak", "screening", "dosage",
               "symptom", "therapy", "pathogen", "diagnosis", "antibody", "ward"),
        entities=("dr. amara", "the health agency", "surgeon general polk", "dr. lindgren",
                  "the hospital board", "epidemiologist tan", "nurse association rep casillas",
                  "the medical council"),
        places=("the regional hospital", "the research clinic", "the public health lab",
                "the vaccination center", "the county ward", "the review board"),
        objects=("the influenza vaccine", "the screening program", "the clinical trial",
                 "the treatment protocol", "the outbreak response", "the drug approval"),
    ),
    Topic(
        name="science",
        nouns=("experiment", "telescope", "specimen", "dataset", "orbit", "genome",
               "reactor", "sensor", "hypothesis", "particle", "survey", "sample"),
        entities=("professor nyman", "the space agency", "the research institute",
                  "dr. castellanos", "the physics consortium", "geologist braun",
                  "the observatory team", "laureate adeyemi"),
        places=("the observatory", "the laboratory", "the research station",
                "the launch site", "the field camp", "the particle facility"),
        objects=("the lunar probe", "the climate dataset", "the fusion experiment",
                 "the genome survey", "the deep-sea sensor", "the asteroid sample"),
    ),
    Topic(
        name="technology",
        nouns=("platform", "algorithm", "chip", "network", "breach", "patch",
               "firmware", "protocol", "startup", "patent", "outage", "encryption"),
        entities=("the software consortium", "ceo maravilla", "the standards body",
                  "engineer kowalski", "the security firm", "founder abebe",
                  "the telecom regulator", "cto ramanathan"),
        places=("the developer conference", "the data center", "the standards meeting",
                "the product launch", "the security summit", "the campus"),
        objects=("the payment platform", "the identity protocol", "the browser patch",
                 "the chip factory", "the spectrum auction", "the open-source toolkit"),
    ),
    Topic(
        name="climate",
        nouns=("emissions", "drought", "reservoir", "wildfire", "glacier", "treaty",
               "monsoon", "grid", "turbine", "carbon", "habitat", "floodplain"),
        entities=("the climate panel", "minister dube", "the energy cooperative",
                  "scientist aalto", "the forestry service", "negotiator silva",
                  "the coastal authority", "meteorologist park"),
        places=("the delta region", "the summit venue", "the coastal plain",
                "the northern grid", "the conservation area", "the basin"),
        objects=("the emissions target", "the solar array", "the water accord",
                 "the reforestation plan", "the flood barrier", "the carbon registry"),
    ),
    Topic(
        name="sports",
        nouns=("tournament", "transfer", "final", "record", "league", "injury",
               "contract", "qualifier", "stadium", "season", "penalty", "roster"),
        entities=("coach ferreira", "striker jansen", "the athletics federation",
                  "captain osei", "the league office", "goalkeeper martel",
                  "manager sato", "the referees union"),
        places=("the national stadium", "the training ground", "the championship venue",
                "the arena", "the qualifying round", "the home fixture"),
        objects=("the championship final", "the transfer deal", "the league schedule",
                 "the doping review", "the broadcast rights", "the youth academy"),
    ),
    Topic(
        name="elections",
        nouns=("ballot", "precinct", "turnout", "recount", "registration", "mandate",
               "poll", "constituency", "runoff", "tally", "observer", "certification"),
        entities=("candidate novak", "candidate ashby", "the election board",
                  "commissioner reyes", "the observers mission", "pollster grimaldi",
                  "the returning officer", "campaign chair mensah"),
        places=("the polling station", "the count center", "the district office",
                "the campaign rally", "the debate hall", "the certification hearing"),
        objects=("the provisional ballots", "the voter rolls", "the runoff schedule",
                 "the audit procedure", "the campaign filings", "the district map"),
    ),
)


def topic_by_name(name: str) -> Topic:
    """Look a topic up by name; raises KeyError with the known names."""
    for topic in TOPICS:
        if topic.name == name:
            return topic
    raise KeyError(f"unknown topic {name!r}; known: {[t.name for t in TOPICS]}")
