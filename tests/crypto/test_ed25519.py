"""Ed25519 against RFC 8032 vectors, plus negative/malleability cases."""

import pytest

from repro.crypto import ed25519
from repro.errors import CryptoError

# RFC 8032 §7.1 test vectors (seed, public key, message, signature).
RFC8032_VECTORS = [
    (
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        "af82",
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
        "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
    ),
]


@pytest.mark.parametrize("seed_hex,pub_hex,msg_hex,sig_hex", RFC8032_VECTORS)
def test_rfc8032_public_key(seed_hex, pub_hex, msg_hex, sig_hex):
    assert ed25519.generate_public_key(bytes.fromhex(seed_hex)).hex() == pub_hex


@pytest.mark.parametrize("seed_hex,pub_hex,msg_hex,sig_hex", RFC8032_VECTORS)
def test_rfc8032_signature(seed_hex, pub_hex, msg_hex, sig_hex):
    signature = ed25519.sign(bytes.fromhex(seed_hex), bytes.fromhex(msg_hex))
    assert signature.hex() == sig_hex


@pytest.mark.parametrize("seed_hex,pub_hex,msg_hex,sig_hex", RFC8032_VECTORS)
def test_rfc8032_verify_roundtrip(seed_hex, pub_hex, msg_hex, sig_hex):
    assert ed25519.verify(
        bytes.fromhex(pub_hex), bytes.fromhex(msg_hex), bytes.fromhex(sig_hex)
    )


def test_wrong_message_rejected():
    seed = bytes(range(32))
    public = ed25519.generate_public_key(seed)
    signature = ed25519.sign(seed, b"hello")
    assert not ed25519.verify(public, b"hellx", signature)


def test_wrong_key_rejected():
    seed_a, seed_b = bytes(range(32)), bytes(range(1, 33))
    signature = ed25519.sign(seed_a, b"msg")
    assert not ed25519.verify(ed25519.generate_public_key(seed_b), b"msg", signature)


def test_flipped_signature_bit_rejected():
    seed = bytes(range(32))
    public = ed25519.generate_public_key(seed)
    signature = bytearray(ed25519.sign(seed, b"msg"))
    signature[0] ^= 0x01
    assert not ed25519.verify(public, b"msg", bytes(signature))


def test_high_s_rejected():
    """Signatures with s >= L are non-canonical and must be rejected."""
    seed = bytes(range(32))
    public = ed25519.generate_public_key(seed)
    signature = bytearray(ed25519.sign(seed, b"msg"))
    # Force the scalar half to a value >= L.
    signature[32:] = (2**252 + 27742317777372353535851937790883648493).to_bytes(32, "little")
    assert not ed25519.verify(public, b"msg", bytes(signature))


def test_malformed_lengths_rejected():
    seed = bytes(range(32))
    public = ed25519.generate_public_key(seed)
    signature = ed25519.sign(seed, b"msg")
    assert not ed25519.verify(public[:31], b"msg", signature)
    assert not ed25519.verify(public, b"msg", signature[:63])


def test_bad_seed_length_raises():
    with pytest.raises(CryptoError):
        ed25519.generate_public_key(b"short")
    with pytest.raises(CryptoError):
        ed25519.sign(b"short", b"msg")


def test_signature_deterministic():
    seed = bytes(range(32))
    assert ed25519.sign(seed, b"same") == ed25519.sign(seed, b"same")


def test_distinct_messages_distinct_signatures():
    seed = bytes(range(32))
    assert ed25519.sign(seed, b"a") != ed25519.sign(seed, b"b")
