"""Social-media agents: users, bots, cyborgs, and journalists.

The paper (citing Grinberg et al. [36]) attributes fake-news spread
"substantially [to] bots and cyborgs"; the agent taxonomy here encodes
that: bots re-share aggressively and mutate maliciously, cyborgs are
human accounts delegated to apps (intermediate behaviour), journalists
share rarely and verify first, ordinary users sit in between with
limited attention (ref [65]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["AgentKind", "SocialAgent", "make_population", "make_botnet", "KIND_PROFILES"]


class AgentKind(str, Enum):
    USER = "user"
    BOT = "bot"
    CYBORG = "cyborg"
    JOURNALIST = "journalist"


@dataclass(frozen=True)
class _Profile:
    """Behavioural parameters for one agent kind."""

    share_probability: float  # chance of re-sharing something seen
    malicious_probability: float  # chance this agent is a bad actor
    mutate_probability: float  # if malicious: chance a share mutates
    attention: int  # max re-shares per round (limited attention)


KIND_PROFILES: dict[AgentKind, _Profile] = {
    AgentKind.USER: _Profile(0.10, 0.05, 0.30, 2),
    AgentKind.BOT: _Profile(0.55, 0.90, 0.50, 8),
    AgentKind.CYBORG: _Profile(0.35, 0.60, 0.40, 5),
    AgentKind.JOURNALIST: _Profile(0.08, 0.01, 0.05, 3),
}


@dataclass
class SocialAgent:
    """One account in the social graph."""

    agent_id: str
    kind: AgentKind
    malicious: bool
    share_probability: float
    mutate_probability: float
    attention: int
    community: int = 0
    # Coordinated-amplification ring id (None for organic accounts).
    ring: str | None = None
    # Filled by experiments that bind agents to chain identities.
    address: str | None = None
    seen: set[str] = field(default_factory=set)

    @classmethod
    def create(cls, agent_id: str, kind: AgentKind, rng: random.Random, community: int = 0) -> "SocialAgent":
        profile = KIND_PROFILES[kind]
        malicious = rng.random() < profile.malicious_probability
        return cls(
            agent_id=agent_id,
            kind=kind,
            malicious=malicious,
            share_probability=profile.share_probability,
            mutate_probability=profile.mutate_probability if malicious else 0.0,
            attention=profile.attention,
            community=community,
        )


def make_population(
    n_agents: int,
    rng: random.Random,
    bot_fraction: float = 0.08,
    cyborg_fraction: float = 0.05,
    journalist_fraction: float = 0.03,
) -> list[SocialAgent]:
    """Create a mixed population with the given kind fractions.

    Kind counts are deterministic (rounded), assignment to ids is
    shuffled by *rng* so structure and role are independent.
    """
    if bot_fraction + cyborg_fraction + journalist_fraction >= 1.0:
        raise ValueError("kind fractions must sum to < 1")
    n_bots = round(n_agents * bot_fraction)
    n_cyborgs = round(n_agents * cyborg_fraction)
    n_journalists = round(n_agents * journalist_fraction)
    kinds = (
        [AgentKind.BOT] * n_bots
        + [AgentKind.CYBORG] * n_cyborgs
        + [AgentKind.JOURNALIST] * n_journalists
    )
    kinds += [AgentKind.USER] * (n_agents - len(kinds))
    rng.shuffle(kinds)
    return [
        SocialAgent.create(f"agent-{index:05d}", kind, rng)
        for index, kind in enumerate(kinds)
    ]


def make_botnet(agents: list[SocialAgent], size: int, rng: random.Random,
                ring_id: str = "ring-0") -> list[SocialAgent]:
    """Convert *size* random agents into a coordinated amplification ring.

    Ring members become malicious bots that re-share each other's
    content near-deterministically (the cascade engine honours the
    ``ring`` field) — the coordination signature bot detection (E13)
    looks for.  Returns the recruited members.
    """
    if size > len(agents):
        raise ValueError("botnet larger than the population")
    recruits = rng.sample(agents, size)
    for agent in recruits:
        agent.kind = AgentKind.BOT
        agent.malicious = True
        profile = KIND_PROFILES[AgentKind.BOT]
        agent.share_probability = profile.share_probability
        agent.mutate_probability = profile.mutate_probability
        agent.attention = profile.attention
        agent.ring = ring_id
    return recruits
