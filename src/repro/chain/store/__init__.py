"""Pluggable block storage: in-memory (seed behaviour), durable, or sqlite.

See :mod:`repro.chain.store.base` for the interface,
:mod:`repro.chain.store.durable` for the write-ahead-log + snapshot
backend, :mod:`repro.chain.store.sqlite` for the relational backend
(same WAL, serialized sqlite3 snapshot images, schema migrations), and
``docs/API.md`` for the record format and the recovery degradation
ladder.
"""

from repro.chain.store.base import BlockStore, Degradation, RecoveredChain, RecoveryReport
from repro.chain.store.codec import decode_record, encode_record
from repro.chain.store.durable import DurableStore
from repro.chain.store.inspect import inspect_disk, inspect_files, render_inspection
from repro.chain.store.log import BlockLog, LogRecord, LogScan, scan_log_bytes
from repro.chain.store.memory import MemoryStore
from repro.chain.store.snapshots import list_snapshots, load_snapshot, write_snapshot
from repro.chain.store.sqlite import SQLiteStore

__all__ = [
    "BlockStore",
    "Degradation",
    "RecoveredChain",
    "RecoveryReport",
    "MemoryStore",
    "DurableStore",
    "SQLiteStore",
    "BlockLog",
    "LogRecord",
    "LogScan",
    "scan_log_bytes",
    "encode_record",
    "decode_record",
    "write_snapshot",
    "load_snapshot",
    "list_snapshots",
    "inspect_files",
    "inspect_disk",
    "render_inspection",
]
