"""Media fingerprint registry and the deepfake path through publishing."""

import numpy as np
import pytest

from repro.corpus import CorpusGenerator
from repro.corpus.mutations import relay
from repro.errors import ContractError
from repro.ml import capture_signal, tamper_signal


@pytest.fixture
def rng():
    return np.random.default_rng(21)


@pytest.fixture
def newsroom_platform(platform):
    gen = CorpusGenerator(seed=90)
    fact = gen.factual(topic="politics")
    platform.seed_fact("f-1", fact.text, "record", "politics")
    platform.register_participant("acme", role="publisher")
    platform.create_distribution_platform("acme", "acme-news")
    platform.create_news_room("acme", "acme-news", "desk", "politics")
    platform.register_participant("cam", role="journalist")
    platform.authenticate_journalist("acme-news", "cam")
    return platform, fact


def test_register_and_assess_authentic(newsroom_platform, rng):
    platform, fact = newsroom_platform
    signal = capture_signal(rng)
    platform.register_media("cam", "clip-1", signal, "press conference")
    assert platform.assess_media("clip-1", signal) == 0.0


def test_assess_tampered(newsroom_platform, rng):
    platform, fact = newsroom_platform
    signal = capture_signal(rng)
    platform.register_media("cam", "clip-1", signal)
    tampered, _ = tamper_signal(signal, rng)
    assert platform.assess_media("clip-1", tampered) > 0.05


def test_unregistered_media_scores_unverifiable(newsroom_platform, rng):
    platform, fact = newsroom_platform
    assert platform.assess_media("ghost-clip", capture_signal(rng)) == 1.0


def test_duplicate_media_id_rejected(newsroom_platform, rng):
    platform, fact = newsroom_platform
    signal = capture_signal(rng)
    platform.register_media("cam", "clip-1", signal)
    with pytest.raises(ContractError, match="already registered"):
        platform.register_media("cam", "clip-1", signal)


def test_publish_with_authentic_media_keeps_score(newsroom_platform, rng, trained_scorer):
    platform, fact = newsroom_platform
    platform.scorer = trained_scorer
    signal = capture_signal(rng)
    platform.register_media("cam", "clip-1", signal)
    report = relay(fact, "cam", 1.0)
    published = platform.publish_article(
        "cam", "acme-news", "desk", "a-1", report.text, "politics",
        media=[("clip-1", signal)],
    )
    assert published.ai_score is not None and published.ai_score < 0.5


def test_publish_with_deepfaked_media_condemns_article(newsroom_platform, rng, trained_scorer):
    """Neutral text + tampered clip -> high P(fake): the fusion path."""
    platform, fact = newsroom_platform
    platform.scorer = trained_scorer
    signal = capture_signal(rng)
    platform.register_media("cam", "clip-1", signal)
    tampered, _ = tamper_signal(signal, rng, n_segments=6)
    report = relay(fact, "cam", 1.0)
    published = platform.publish_article(
        "cam", "acme-news", "desk", "a-2", report.text, "politics",
        media=[("clip-1", tampered)],
    )
    assert published.ai_score > 0.2
    # The assessment itself landed on the ledger.
    events = list(platform.chain.ledger.events(contract="media", kind="media-assessed"))
    assert events and events[-1]["article_id"] == "a-2"
    # And the ranking feels it.
    clean = platform.publish_article(
        "cam", "acme-news", "desk", "a-3", relay(fact, "cam", 2.0).text, "politics",
        media=[("clip-1", signal)],
    )
    fake_rank = platform.rank_article("a-2")
    clean_rank = platform.rank_article("a-3")
    assert fake_rank.score < clean_rank.score


def test_assessment_requires_registered_media(newsroom_platform, rng):
    platform, fact = newsroom_platform
    with pytest.raises(ContractError, match="no media"):
        platform.chain.invoke(
            platform.governance, "media", "record_assessment",
            {"media_id": "ghost", "article_id": "a-1", "tamper_score": 0.5},
        )
