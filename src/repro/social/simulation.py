"""Scenario harnesses built on the cascade engine.

:func:`run_race` is the paper's headline dynamic (E10): seed one factual
and one fake story about the same topic at the same instant and measure
whose reach grows faster, with and without platform intervention
("factual-sourced reporting can outpace the spread of fake news").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from repro.corpus.generator import CorpusGenerator
from repro.social.agents import SocialAgent, make_population
from repro.social.cascade import CascadeResult, CascadeRunner
from repro.social.graphs import bind_agents, scale_free_follow_graph

__all__ = ["RaceOutcome", "RaceSummary", "build_social_world", "run_race", "run_races"]


@dataclass
class RaceOutcome:
    """Reach trajectories of a fake-vs-factual propagation race."""

    factual_reach: list[int]
    fake_reach: list[int]
    factual_root: str
    fake_root: str
    result: CascadeResult

    @property
    def final_factual(self) -> int:
        return self.factual_reach[-1] if self.factual_reach else 0

    @property
    def final_fake(self) -> int:
        return self.fake_reach[-1] if self.fake_reach else 0

    @property
    def fake_advantage(self) -> float:
        """Final fake reach / factual reach (> 1 means fake won)."""
        return self.final_fake / max(1, self.final_factual)

    def crossover_round(self) -> int | None:
        """First round where factual reach overtakes fake, if ever."""
        for index, (factual, fake) in enumerate(zip(self.factual_reach, self.fake_reach)):
            if factual > fake:
                return index
        return None


def build_social_world(
    n_agents: int = 500,
    seed: int = 0,
    bot_fraction: float = 0.08,
) -> tuple[nx.DiGraph, list[SocialAgent], CorpusGenerator]:
    """Standard experiment fixture: graph + bound agents + generator."""
    rng = random.Random(seed)
    graph = scale_free_follow_graph(n_agents, seed=seed)
    agents = make_population(n_agents, rng, bot_fraction=bot_fraction)
    bind_agents(graph, agents)
    corpus = CorpusGenerator(seed=seed + 1)
    return graph, agents, corpus


def run_race(
    graph: nx.DiGraph,
    corpus: CorpusGenerator,
    seed: int = 0,
    n_rounds: int = 12,
    intervene: bool = False,
    flag_round: int = 2,
    damping: float = 0.8,
    promotion_boost: float = 2.0,
    topic: str = "elections",
) -> RaceOutcome:
    """Seed a factual and a fake article simultaneously and race them.

    Both stories start from comparably connected hub accounts (news
    breaks from visible sources).  The fake is an emotional-insertion
    mutation of the factual story, so it enjoys the empirical virality
    advantage of sensational content.  With ``intervene=True`` the
    platform flags the fake lineage (share probability damped) and
    promotes the verified-factual lineage, both starting at
    ``flag_round`` — modelling detection latency.
    """
    rng = random.Random(seed + 17)
    # Seed both stories at hubs of comparable degree (top decile).
    by_degree = sorted(graph.nodes(), key=lambda n: graph.out_degree(n), reverse=True)
    hubs = by_degree[: max(4, len(by_degree) // 10)]
    factual_node, fake_node = rng.sample(hubs, 2)
    factual = corpus.factual(topic=topic, timestamp=0.0)
    fake = corpus.insertion_fake(factual, corpus.next_author(), 0.0, n_insertions=4)

    state = {"round": 0}
    root_of: dict[str, str] = {}

    def flagged(article_id: str) -> bool:
        if not intervene or state["round"] < flag_round:
            return False
        return root_of.get(article_id) == fake.article_id

    def promoted(article_id: str) -> bool:
        if not intervene or state["round"] < flag_round:
            return False
        return root_of.get(article_id) == factual.article_id

    runner = CascadeRunner(
        graph, corpus, rng=rng, flagged=flagged, promoted=promoted,
        damping=damping, promotion_boost=promotion_boost,
    )

    # The flag predicate needs to know each derived article's root while
    # the cascade is still running; maintain the root map incrementally
    # from share events (child inherits the parent's root).
    def track(event, article):
        state["round"] = event.round_index
        root_of[article.article_id] = root_of.get(event.parent_article_id, article.article_id)

    runner.on_share = track
    root_of[factual.article_id] = factual.article_id
    root_of[fake.article_id] = fake.article_id

    result = runner.run(
        seeds=[(factual_node, factual), (fake_node, fake)],
        n_rounds=n_rounds,
    )
    return RaceOutcome(
        factual_reach=result.reach_curve(factual.article_id),
        fake_reach=result.reach_curve(fake.article_id),
        factual_root=factual.article_id,
        fake_root=fake.article_id,
        result=result,
    )


@dataclass
class RaceSummary:
    """Mean outcomes across independent race trials.

    Single cascades are highly variance-dominated (one lucky hub share
    decides a race), so every claim about fake-vs-factual speed is made
    in expectation over trials — as the empirical literature does.
    """

    trials: int
    mean_factual: float
    mean_fake: float
    mean_factual_curve: list[float]
    mean_fake_curve: list[float]

    @property
    def fake_advantage(self) -> float:
        return self.mean_fake / max(1e-9, self.mean_factual)


def run_races(
    n_trials: int = 10,
    n_agents: int = 400,
    seed: int = 0,
    intervene: bool = False,
    n_rounds: int = 12,
    **race_kwargs,
) -> RaceSummary:
    """Run *n_trials* independent races on fresh worlds and average."""
    factual_total = 0.0
    fake_total = 0.0
    factual_curves = []
    fake_curves = []
    for trial in range(n_trials):
        graph, _, corpus = build_social_world(n_agents=n_agents, seed=seed + trial * 1000)
        outcome = run_race(
            graph, corpus, seed=seed + trial * 1000, intervene=intervene,
            n_rounds=n_rounds, **race_kwargs,
        )
        factual_total += outcome.final_factual
        fake_total += outcome.final_fake
        factual_curves.append(outcome.factual_reach)
        fake_curves.append(outcome.fake_reach)

    def _mean_curve(curves: list[list[int]]) -> list[float]:
        length = max((len(c) for c in curves), default=0)
        padded = [c + [c[-1]] * (length - len(c)) if c else [0] * length for c in curves]
        return [sum(col) / len(padded) for col in zip(*padded)] if padded else []

    return RaceSummary(
        trials=n_trials,
        mean_factual=factual_total / n_trials,
        mean_fake=fake_total / n_trials,
        mean_factual_curve=_mean_curve(factual_curves),
        mean_fake_curve=_mean_curve(fake_curves),
    )
