"""Parent discovery across methods; ranking fusion and modes."""

import pytest

from repro.core import ArticleSignals, FactualnessRanker, ProvenanceIndex, RankingWeights
from repro.corpus import CorpusGenerator
from repro.errors import ReproError


@pytest.fixture
def gen():
    return CorpusGenerator(seed=31)


@pytest.mark.parametrize("method", ["exact", "minhash", "cosine"])
def test_discovers_true_parent(gen, method):
    index = ProvenanceIndex(method=method)
    originals = [gen.factual() for _ in range(10)]
    for article in originals:
        index.add(article.article_id, article.text)
    child = gen.relay_derivation(originals[3], "sharer", 1.0)
    candidates = index.discover_parents(child.text)
    assert candidates
    assert candidates[0].article_id == originals[3].article_id


@pytest.mark.parametrize("method", ["exact", "minhash", "cosine"])
def test_unrelated_text_finds_nothing(gen, method):
    index = ProvenanceIndex(method=method, shingle_k=3)
    for _ in range(5):
        article = gen.factual(topic="sports")
        index.add(article.article_id, article.text)
    assert index.discover_parents("completely unrelated quantum blockchain gardening") == []


def test_mutated_child_still_resolves(gen):
    index = ProvenanceIndex(method="exact")
    originals = [gen.factual() for _ in range(8)]
    for article in originals:
        index.add(article.article_id, article.text)
    fake = gen.malicious_derivation(originals[2], "troll", 1.0, pool=originals)
    candidates = index.discover_parents(fake.text, threshold=0.1)
    assert any(c.article_id == originals[2].article_id for c in candidates)


def test_max_parents_respected(gen):
    index = ProvenanceIndex(method="exact")
    base = gen.factual()
    index.add(base.article_id, base.text)
    for i in range(4):
        relay = gen.relay_derivation(base, f"s{i}", 1.0)
        index.add(relay.article_id, relay.text)
    candidates = index.discover_parents(base.text, max_parents=2, exclude=base.article_id)
    assert len(candidates) == 2


def test_exclude_self(gen):
    index = ProvenanceIndex(method="exact")
    article = gen.factual()
    index.add(article.article_id, article.text)
    candidates = index.discover_parents(article.text, exclude=article.article_id)
    assert all(c.article_id != article.article_id for c in candidates)


def test_duplicate_add_rejected(gen):
    index = ProvenanceIndex()
    article = gen.factual()
    index.add(article.article_id, article.text)
    with pytest.raises(ReproError):
        index.add(article.article_id, article.text)


def test_unknown_method_rejected():
    with pytest.raises(ReproError):
        ProvenanceIndex(method="vibes")


def test_modification_degree_measured(gen):
    index = ProvenanceIndex()
    parent = gen.factual()
    index.add(parent.article_id, parent.text)
    assert index.modification_degree(parent.text, [parent.article_id]) == pytest.approx(0.0)
    assert index.modification_degree("totally different words", [parent.article_id]) > 0.8
    assert index.modification_degree("anything", []) == 1.0


# -- ranking fusion ------------------------------------------------------------


def test_hybrid_weighted_mean():
    ranker = FactualnessRanker(RankingWeights(provenance=0.5, ai=0.3, crowd=0.2))
    signals = ArticleSignals("a", provenance_score=1.0, ai_score=0.5, crowd_score=0.0)
    assert ranker.score(signals) == pytest.approx(0.5 * 1.0 + 0.3 * 0.5)


def test_missing_signals_renormalize():
    ranker = FactualnessRanker(RankingWeights(provenance=0.5, ai=0.3, crowd=0.2))
    signals = ArticleSignals("a", provenance_score=0.8, ai_score=None, crowd_score=None)
    assert ranker.score(signals) == pytest.approx(0.8)


def test_all_missing_neutral():
    assert FactualnessRanker().score(ArticleSignals("a")) == 0.5


def test_single_signal_modes():
    ranker = FactualnessRanker()
    signals = ArticleSignals("a", provenance_score=0.9, ai_score=0.1, crowd_score=0.4)
    assert ranker.score(signals, mode="provenance") == 0.9
    assert ranker.score(signals, mode="ai") == 0.1
    assert ranker.score(signals, mode="crowd") == 0.4


def test_unknown_mode_rejected():
    with pytest.raises(ReproError):
        FactualnessRanker().score(ArticleSignals("a"), mode="oracle")


def test_rank_orders_descending():
    ranker = FactualnessRanker()
    ranked = ranker.rank(
        [
            ArticleSignals("low", provenance_score=0.1),
            ArticleSignals("high", provenance_score=0.9),
            ArticleSignals("mid", provenance_score=0.5),
        ]
    )
    assert [r.article_id for r in ranked] == ["high", "mid", "low"]


def test_weight_validation():
    with pytest.raises(ReproError):
        RankingWeights(provenance=-1)
    with pytest.raises(ReproError):
        RankingWeights(provenance=0, ai=0, crowd=0)
