"""Consensus: PoA ordering, PBFT safety/liveness, byzantine behaviour."""

import pytest

from repro.chain import BlockchainNetwork
from repro.errors import ChainError
from repro.simnet import FixedLatency


def _network(consensus, n_peers=4, **kwargs):
    from tests.conftest import CounterContract

    defaults = dict(block_interval=0.5, latency=FixedLatency(0.02), seed=42)
    defaults.update(kwargs)
    net = BlockchainNetwork(n_peers=n_peers, consensus=consensus, **defaults)
    net.install_contract(CounterContract)
    return net


@pytest.mark.parametrize("consensus", ["poa", "pbft"])
def test_single_tx_commits_everywhere(consensus):
    net = _network(consensus)
    client = net.client()
    receipt = client.invoke("counter", "increment", {"amount": 3})
    assert receipt.success
    net.run_for(5)
    net.assert_convergence()
    heights = net.committed_heights()
    assert all(h == 1 for h in heights.values()), heights
    for peer in net.peers:
        assert peer.state.get("count") == 3


@pytest.mark.parametrize("consensus", ["poa", "pbft"])
def test_many_txs_all_commit(consensus):
    net = _network(consensus)
    client = net.client()
    tx_ids = [client.invoke("counter", "increment", wait=False) for _ in range(20)]
    receipts = [net.wait_for_receipt(tx_id) for tx_id in tx_ids]
    assert all(r.tx_id in {t for t in tx_ids} for r in receipts)
    net.run_for(5)
    net.assert_convergence()
    # One tx wins per hot key, rest are MVCC conflicts — Fabric semantics:
    # every tx is committed (on-chain) but only fresh ones applied.
    total = net.peers[0].ledger.total_transactions()
    assert total == 20


def test_poa_leader_rotates():
    net = _network("poa")
    client = net.client()
    proposers = set()
    for _ in range(4):
        tx_id = client.invoke("counter", "increment", wait=False)
        net.wait_for_receipt(tx_id)
        net.run_for(2)
        proposers.add(net.peers[0].ledger.head.proposer)
    assert len(proposers) >= 2  # rotation across heights


def test_poa_sync_after_partition_heal():
    net = _network("poa")
    client = net.client()
    client.invoke("counter", "increment")
    net.run_for(2)
    net.net.partition({"peer-0", "peer-1", "peer-2"})
    # Submit directly to a majority-side peer (a random entry peer might
    # be the isolated one, whose gossip would never reach the leaders).
    tx = net.endorse_transaction(client, "counter", "increment", {})
    net.peers[0].submit(tx)
    net.wait_for_receipt(tx.tx_id)
    net.run_for(3)
    net.net.heal()
    # peer-3 missed a block; next block triggers catch-up sync.
    tx = net.endorse_transaction(client, "counter", "increment", {})
    net.peers[0].submit(tx)
    net.wait_for_receipt(tx.tx_id)
    net.run_for(10)
    net.assert_convergence()
    heights = net.committed_heights()
    assert heights["peer-3"] == max(heights.values())


def test_pbft_commits_despite_crashed_replica():
    net = _network("pbft")
    net.peers[3].crashed = True  # crash a non-primary replica (f=1)
    client = net.client()
    receipt = client.invoke("counter", "increment", {"amount": 5})
    assert receipt.success
    net.run_for(5)
    live = [p for p in net.peers if not p.crashed]
    assert all(p.ledger.height == 1 for p in live)


def test_pbft_view_change_replaces_crashed_primary():
    net = _network("pbft", view_timeout=2.0)
    net.peers[0].crashed = True  # primary of view 0
    client = net.client()
    tx_id = client.invoke("counter", "increment", wait=False)
    net.run_for(30)
    live = [p for p in net.peers if not p.crashed]
    assert any(e.view_changes_completed >= 1 for e in (p.engine for p in live))
    assert all(p.ledger.height >= 1 for p in live), net.committed_heights()
    assert any(tx_id in p.receipts for p in live)


def test_pbft_byzantine_primary_cannot_fork():
    net = _network("pbft", byzantine_peers={"peer-0"}, view_timeout=2.0)
    client = net.client()
    tx_ids = [client.invoke("counter", "increment", wait=False) for _ in range(6)]
    net.run_for(40)
    net.assert_convergence()  # honest peers never fork
    honest = [p for p in net.peers if not p.byzantine]
    assert all(p.ledger.height >= 1 for p in honest)


def test_pbft_requires_four_peers():
    with pytest.raises(ChainError):
        BlockchainNetwork(n_peers=3, consensus="pbft")


def test_convergence_detects_fork():
    net = _network("poa")
    client = net.client()
    client.invoke("counter", "increment")
    net.run_for(3)
    # Manufacture a fork on one peer by rewriting its chain copy.
    from repro.chain.block import Block

    victim = net.peers[2]
    forged = Block.build(1, victim.ledger.block(0).block_hash, 9.9, "evil", [])
    victim.ledger._blocks[1] = forged  # simulate corrupted storage
    with pytest.raises(ChainError):
        net.assert_convergence()
