"""Deterministic smart-contract runtime with gas metering.

Contracts are Python classes (see :mod:`repro.chain.contracts.contract`)
whose methods execute against a :class:`ContractContext`.  The context is
the *only* door to state: every read/write is metered and recorded into
the transaction's read/write sets, which is what makes Fabric-style MVCC
validation and the paper's full auditability possible.

Determinism rules enforced by construction: contracts get no clock other
than ``ctx.timestamp`` (the transaction's), no randomness, and no I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.chain.state import StateSnapshot
from repro.errors import ContractError, OutOfGasError

__all__ = ["GasSchedule", "ContractContext", "ExecutionResult"]


@dataclass(frozen=True)
class GasSchedule:
    """Cost table for metered operations."""

    base: int = 100
    read: int = 10
    write: int = 50
    delete: int = 30
    event: int = 5
    per_byte: int = 1

    @staticmethod
    def size_of(value: Any) -> int:
        """Rough byte-size estimate used for per-byte charging."""
        return len(repr(value))


@dataclass
class ExecutionResult:
    """Everything one simulated execution produced."""

    success: bool
    return_value: Any = None
    error: str | None = None
    gas_used: int = 0
    read_set: dict[str, int] = field(default_factory=dict)
    write_set: dict[str, Any] = field(default_factory=dict)
    events: tuple[dict[str, Any], ...] = ()


class ContractContext:
    """The API surface contracts program against."""

    def __init__(
        self,
        snapshot: StateSnapshot,
        caller: str,
        timestamp: float,
        tx_id: str,
        gas_limit: int = 10_000_000,
        schedule: GasSchedule | None = None,
    ):
        self._snapshot = snapshot
        self.caller = caller
        self.timestamp = timestamp
        self.tx_id = tx_id
        self.gas_limit = gas_limit
        self.gas_used = 0
        self._schedule = schedule or GasSchedule()
        self._events: list[dict[str, Any]] = []
        self._charge(self._schedule.base)

    # -- gas ----------------------------------------------------------------

    def _charge(self, amount: int) -> None:
        self.gas_used += amount
        if self.gas_used > self.gas_limit:
            raise OutOfGasError(
                f"gas limit {self.gas_limit} exceeded (used {self.gas_used})"
            )

    # -- state --------------------------------------------------------------

    def get(self, key: str) -> Any:
        """Read a key (None if absent); charged per byte returned."""
        value = self._snapshot.get(key)
        self._charge(self._schedule.read + self._schedule.per_byte * self._schedule.size_of(value))
        return value

    def put(self, key: str, value: Any) -> None:
        """Write a key; charged per byte stored."""
        self._charge(self._schedule.write + self._schedule.per_byte * self._schedule.size_of(value))
        self._snapshot.put(key, value)

    def delete(self, key: str) -> None:
        self._charge(self._schedule.delete)
        self._snapshot.delete(key)

    def keys_with_prefix(self, prefix: str) -> list[str]:
        """Range scan; charged per key returned."""
        keys = self._snapshot.keys_with_prefix(prefix)
        self._charge(self._schedule.read * max(1, len(keys)))
        return keys

    def require(self, condition: bool, message: str) -> None:
        """Abort the transaction unless *condition* holds."""
        if not condition:
            raise ContractError(message)

    def emit(self, kind: str, **fields: Any) -> None:
        """Emit an event into the transaction record (ledger-queryable)."""
        self._charge(self._schedule.event + self._schedule.per_byte * self._schedule.size_of(fields))
        event = {"kind": kind}
        event.update(fields)
        self._events.append(event)

    @property
    def events(self) -> tuple[dict[str, Any], ...]:
        return tuple(self._events)
