"""Contract runtime: dispatch, gas, events, registry, endorsement policy."""

import random

import pytest

from repro.chain import Contract, ContractRegistry, EndorsementPolicy, contract_method
from repro.chain.contracts import check_endorsements
from repro.chain.contracts.runtime import GasSchedule
from repro.chain.state import WorldState
from repro.chain.transaction import Endorsement, Transaction, rwset_digest
from repro.crypto import KeyPair
from repro.errors import ContractError, EndorsementError


class Bank(Contract):
    name = "bank"

    @contract_method
    def deposit(self, ctx, account: str, amount: int):
        ctx.require(amount > 0, "amount must be positive")
        balance = (ctx.get(f"bal:{account}") or 0) + amount
        ctx.put(f"bal:{account}", balance)
        ctx.emit("deposited", account=account, amount=amount)
        return balance

    @contract_method
    def balances(self, ctx):
        return {k: ctx.get(k) for k in ctx.keys_with_prefix("bal:")}

    def _secret_helper(self, ctx):  # not invocable
        return "secret"


@pytest.fixture
def registry():
    r = ContractRegistry()
    r.install(Bank())
    return r


@pytest.fixture
def state():
    return WorldState()


def _execute(registry, state, method, args, gas_limit=10_000_000):
    return registry.execute(state, "bank", method, args, caller="alice", timestamp=0.0,
                            tx_id="t", gas_limit=gas_limit)


def test_successful_execution_returns_rwsets(registry, state):
    result = _execute(registry, state, "deposit", {"account": "a", "amount": 5})
    assert result.success and result.return_value == 5
    assert result.write_set == {"bal:a": 5}
    assert "bal:a" in result.read_set
    assert result.events[0]["kind"] == "deposited"
    assert result.gas_used > 0


def test_execution_does_not_mutate_state(registry, state):
    _execute(registry, state, "deposit", {"account": "a", "amount": 5})
    assert state.get("bal:a") is None


def test_require_failure_returns_error(registry, state):
    result = _execute(registry, state, "deposit", {"account": "a", "amount": -1})
    assert not result.success
    assert "positive" in result.error
    assert result.write_set == {}
    assert result.events == ()


def test_unknown_method_fails(registry, state):
    result = _execute(registry, state, "withdraw", {})
    assert not result.success and "no method" in result.error


def test_private_helper_not_invocable(registry, state):
    result = _execute(registry, state, "_secret_helper", {})
    assert not result.success


def test_bad_arguments_fail_cleanly(registry, state):
    result = _execute(registry, state, "deposit", {"account": "a", "bogus": 1})
    assert not result.success and "bad arguments" in result.error


def test_unknown_contract_fails(registry, state):
    result = registry.execute(state, "nope", "m", {}, caller="a", timestamp=0.0, tx_id="t")
    assert not result.success


def test_out_of_gas(registry, state):
    result = _execute(registry, state, "deposit", {"account": "a", "amount": 5}, gas_limit=101)
    assert not result.success and "gas" in result.error.lower()


def test_gas_scales_with_value_size(registry, state):
    small = _execute(registry, state, "deposit", {"account": "a", "amount": 1})
    big = _execute(registry, state, "deposit", {"account": "a" * 500, "amount": 1})
    assert big.gas_used > small.gas_used


def test_prefix_scan_method(registry, state):
    state.apply_write_set({"bal:a": 1, "bal:b": 2})
    result = _execute(registry, state, "balances", {})
    assert result.return_value == {"bal:a": 1, "bal:b": 2}


def test_duplicate_install_rejected(registry):
    with pytest.raises(ContractError):
        registry.install(Bank())


def test_contract_must_declare_name():
    with pytest.raises(TypeError):
        class Nameless(Contract):  # noqa: F811
            pass


def test_registry_names(registry):
    assert registry.names() == ["bank"]
    assert "bank" in registry


# -- endorsement policies -----------------------------------------------------


def _endorsed_tx(n_endorsers=2, digest_override=None):
    rng = random.Random(0)
    client = KeyPair.generate(rng)
    tx = Transaction.create(client, "bank", "deposit", {"account": "a", "amount": 1})
    tx = tx.with_execution({"bal:a": -1}, {"bal:a": 1}, (), 1, ())
    endorsements = []
    for index in range(n_endorsers):
        peer_key = KeyPair.generate(rng)
        digest = digest_override or tx.rwset_digest
        endorsements.append(Endorsement.create(peer_key, f"peer-{index}", tx.tx_id, digest))
    import dataclasses

    return dataclasses.replace(tx, endorsements=tuple(endorsements))


def test_policy_satisfied():
    tx = _endorsed_tx(2)
    check_endorsements(tx, EndorsementPolicy(required=2))


def test_policy_insufficient_endorsements():
    tx = _endorsed_tx(1)
    with pytest.raises(EndorsementError):
        check_endorsements(tx, EndorsementPolicy(required=2))


def test_policy_divergent_digest_rejected():
    tx = _endorsed_tx(1, digest_override=rwset_digest({"x": 0}, {}))
    with pytest.raises(EndorsementError):
        check_endorsements(tx, EndorsementPolicy(required=1))


def test_policy_restricts_endorser_set():
    tx = _endorsed_tx(2)  # endorsers peer-0, peer-1
    policy = EndorsementPolicy(required=1, endorsers=("peer-9",))
    with pytest.raises(EndorsementError):
        check_endorsements(tx, policy)


def test_policy_duplicate_endorser_counted_once():
    import dataclasses

    tx = _endorsed_tx(1)
    doubled = dataclasses.replace(tx, endorsements=tx.endorsements * 2)
    with pytest.raises(EndorsementError):
        check_endorsements(doubled, EndorsementPolicy(required=2))


def test_policy_validation():
    with pytest.raises(EndorsementError):
        EndorsementPolicy(required=0)
    with pytest.raises(EndorsementError):
        EndorsementPolicy(required=3, endorsers=("a", "b"))


def test_gas_schedule_size_of():
    assert GasSchedule.size_of("abc") == len(repr("abc"))
