"""Known-clean SIM corpus: sim-time everywhere, even as a chain module."""


class _Engine:
    def __init__(self, sim):
        self.sim = sim

    def stamp_block(self) -> float:
        return self.sim.now

    def round_deadline(self) -> float:
        return self.sim.now + 5.0
